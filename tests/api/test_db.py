"""Session facade tests: `open_db`, query/query_many/stream equivalence,
result wire form, and the removal of the PR-3 legacy surfaces.

The acceptance property (ISSUE 3, extended by ISSUE 5): for random
workloads, ``db.query_many(reqs)``, ``list(db.stream(reqs))``, and the
deduplicating batch executor (``dedup_subqueries=True``) produce
bit-identical histograms / means / scan counts, and every request
survives its wire form round trip.
"""

import warnings

import numpy as np
import pytest

from repro import (
    EngineConfig,
    EstimatorMode,
    SNTIndex,
    StrictPathQuery,
    TravelTimeDB,
    TravelTimeService,
    TripQueryResult,
    TripRequest,
    generate_dataset,
    open_db,
)
from repro.core.intervals import FixedInterval, PeriodicInterval
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def world():
    dataset = generate_dataset("tiny", seed=3)
    index = SNTIndex.build(
        dataset.trajectories, dataset.network.alphabet_size
    )
    return dataset, index


def random_requests(dataset, index, seed, n=12, estimator=None):
    """A random mixed workload: periodic + fixed intervals, user filters,
    exclusions, varying beta."""
    rng = np.random.default_rng(seed)
    eligible = [t for t in dataset.trajectories if len(t) >= 4]
    chosen = rng.choice(len(eligible), size=min(n, len(eligible)),
                        replace=False)
    requests = []
    for position in chosen:
        trip = eligible[int(position)]
        length = int(rng.integers(2, min(len(trip), 8)))
        if rng.random() < 0.5:
            interval = PeriodicInterval.around(
                trip.start_time, int(rng.choice((900, 1800)))
            )
        else:
            interval = FixedInterval(0, index.t_max)
        requests.append(
            TripRequest(
                path=trip.path[:length],
                interval=interval,
                user=trip.user_id if rng.random() < 0.3 else None,
                exclude_ids=(trip.traj_id,) if rng.random() < 0.5 else (),
                beta=int(rng.choice((5, 10, 20))) if rng.random() < 0.7
                else None,
                estimator=estimator,
            )
        )
    return requests


def assert_bit_identical(actual, expected):
    assert len(actual) == len(expected)
    for result, reference in zip(actual, expected):
        assert result.histogram == reference.histogram
        assert result.estimated_mean == reference.estimated_mean
        assert result.n_index_scans == reference.n_index_scans
        assert result.n_estimator_skips == reference.n_estimator_skips
        assert len(result.outcomes) == len(reference.outcomes)
        for out_actual, out_expected in zip(
            result.outcomes, reference.outcomes
        ):
            assert np.array_equal(out_actual.values, out_expected.values)


class TestOpenDb:
    def test_from_reader_and_from_saved_path_agree(self, world, tmp_path):
        dataset, index = world
        index.save(tmp_path / "idx")
        in_memory = open_db(index, network=dataset.network)
        from_disk = open_db(str(tmp_path / "idx"), network=dataset.network)
        requests = random_requests(dataset, index, seed=1, n=4)
        assert_bit_identical(
            from_disk.query_many(requests), in_memory.query_many(requests)
        )

    def test_network_loadable_from_path(self, world, tmp_path):
        from repro.network import save_network

        dataset, index = world
        save_network(dataset.network, tmp_path / "network.json")
        db = open_db(index, network=tmp_path / "network.json")
        request = random_requests(dataset, index, seed=2, n=1)[0]
        assert db.query(request).histogram is not None

    def test_context_manager_clears_cache(self, world):
        dataset, index = world
        request = random_requests(dataset, index, seed=4, n=1)[0]
        with open_db(index, network=dataset.network) as db:
            db.query(request)
            assert db.cache_stats().ranges.size > 0
        assert db.cache_stats().ranges.size == 0

    def test_close_leaves_caller_provided_cache_warm(self, world):
        from repro import SubQueryCache

        dataset, index = world
        shared = SubQueryCache()
        request = random_requests(dataset, index, seed=15, n=1)[0]
        with open_db(index, network=dataset.network, cache=shared) as db:
            db.query(request)
            warm_entries = db.cache_stats().ranges.size
            assert warm_entries > 0
        # The shared cache outlives the session: another session over
        # the same index may still be serving warm hits from it.
        assert shared.stats().ranges.size == warm_entries

    def test_missing_network_fails_fast(self, world):
        _, index = world
        with pytest.raises(ConfigurationError, match="network"):
            open_db(index)

    def test_missing_network_rejected_before_index_load(
        self, world, tmp_path
    ):
        # The check must fire before load_any_index touches disk: the
        # path doesn't even exist, yet the error is about the network.
        with pytest.raises(ConfigurationError, match="network"):
            open_db(tmp_path / "never-created-index")

    def test_rejects_non_request(self, world):
        from repro.errors import RequestValidationError

        dataset, index = world
        db = open_db(index, network=dataset.network)
        spq = StrictPathQuery(path=(1,), interval=FixedInterval(0, 10))
        with pytest.raises(RequestValidationError, match="TripRequest"):
            db.query(spq)

    def test_repr_mentions_configuration(self, world):
        dataset, index = world
        db = open_db(
            index, network=dataset.network,
            config=EngineConfig(partitioner="pi_1"),
        )
        assert "pi_1" in repr(db)
        assert isinstance(db, TravelTimeDB)


class TestRoundTripProperty:
    """The ISSUE 3 acceptance property over several random workloads."""

    @pytest.mark.parametrize("seed", (11, 23, 47))
    def test_query_many_stream_and_dedup_bit_identical(self, world, seed):
        dataset, index = world
        requests = random_requests(dataset, index, seed=seed)

        # Fresh session per surface: identical cold-cache scan counts
        # require sequential execution on an empty cache each time.
        config = EngineConfig(partitioner="pi_Z")
        via_many = open_db(
            index, network=dataset.network, config=config
        ).query_many(requests)
        via_stream = list(
            open_db(index, network=dataset.network, config=config).stream(
                iter(requests)
            )
        )
        dedup_db = open_db(
            index,
            network=dataset.network,
            config=config.replace(dedup_subqueries=True),
        )
        via_dedup = dedup_db.query_many(requests)

        assert_bit_identical(via_stream, via_many)
        # Dedup may shift *which* trip pays a shared scan (the first
        # demander in round order, not in submission order), so per
        # result only the scans+hits sum is pinned — the answers and
        # outcomes stay byte-identical.
        for result, reference in zip(via_dedup, via_many):
            assert result.histogram == reference.histogram
            assert result.estimated_mean == reference.estimated_mean
            assert result.n_estimator_skips == reference.n_estimator_skips
            assert (
                result.n_index_scans + result.n_cache_hits
                == reference.n_index_scans + reference.n_cache_hits
            )
            assert len(result.outcomes) == len(reference.outcomes)
            for out_actual, out_expected in zip(
                result.outcomes, reference.outcomes
            ):
                assert out_actual.query == out_expected.query
                assert np.array_equal(
                    out_actual.values, out_expected.values
                )
        stats = dedup_db.last_dedup_stats
        assert stats is not None
        assert stats.n_trips == len(requests)
        # Executor accounting vs. per-result counters: every demand
        # resumes exactly once, as a scan or as a hit.
        assert stats.planned_subqueries == sum(
            r.n_index_scans + r.n_cache_hits for r in via_dedup
        )
        assert stats.n_index_scans == sum(
            r.n_index_scans for r in via_dedup
        )

        for request in requests:
            assert TripRequest.from_dict(request.to_dict()) == request

    @pytest.mark.parametrize("estimator", (None, "CSS-Fast"))
    def test_fanout_matches_sequential(self, world, estimator):
        dataset, index = world
        requests = random_requests(
            dataset, index, seed=99, estimator=estimator
        )
        config = EngineConfig()
        sequential = open_db(
            index, network=dataset.network, cache=None, config=config
        ).query_many(requests)
        fanned = open_db(
            index, network=dataset.network, config=config
        ).query_many(requests, n_workers=4)
        streamed = list(
            open_db(index, network=dataset.network, config=config).stream(
                requests, n_workers=4, window=3
            )
        )
        # Concurrent fan-out can over-count scans on racy same-key
        # misses, so only the answers are compared here.
        for results in (fanned, streamed):
            for result, reference in zip(results, sequential):
                assert result.histogram == reference.histogram
                assert result.estimated_mean == reference.estimated_mean


class TestStreaming:
    def test_results_carry_request_backrefs_in_order(self, world):
        dataset, index = world
        requests = random_requests(dataset, index, seed=5, n=6)
        db = open_db(index, network=dataset.network)
        for surface in (
            db.query_many(requests),
            list(db.stream(requests, n_workers=3)),
        ):
            assert [r.request for r in surface] == requests

    def test_stream_is_lazy_and_bounded(self, world):
        dataset, index = world
        base = random_requests(dataset, index, seed=6, n=3)
        db = open_db(index, network=dataset.network)
        consumed = []

        def producer():
            for request in base:
                consumed.append(request)
                yield request

        stream = db.stream(producer(), n_workers=1)
        assert consumed == []  # nothing pulled before iteration
        first = next(stream)
        assert first.request is base[0]
        assert len(consumed) == 1  # sequential mode pulls one at a time
        stream.close()

    def test_stream_window_backpressure(self, world):
        dataset, index = world
        base = random_requests(dataset, index, seed=7, n=8)
        db = open_db(index, network=dataset.network)
        consumed = []

        def producer():
            for request in base:
                consumed.append(request)
                yield request

        stream = db.stream(producer(), n_workers=2, window=2)
        first = next(stream)
        assert first.request is base[0]
        # With a window of 2, at most window + 1 requests have been
        # pulled from the producer after one result is consumed.
        assert len(consumed) <= 3
        rest = list(stream)
        assert [r.request for r in [first] + rest] == base

    def test_stream_rejects_bad_workers_and_window(self, world):
        dataset, index = world
        db = open_db(index, network=dataset.network)
        with pytest.raises(ConfigurationError):
            db.stream([], n_workers=0)
        with pytest.raises(ConfigurationError):
            db.stream([], window=0)


class TestResultWireForm:
    def test_result_round_trip(self, world):
        dataset, index = world
        request = random_requests(dataset, index, seed=8, n=1)[0]
        db = open_db(index, network=dataset.network)
        result = db.query(request)
        restored = TripQueryResult.from_dict(result.to_dict())
        assert restored.histogram == result.histogram
        assert restored.estimated_mean == result.estimated_mean
        assert restored.n_index_scans == result.n_index_scans
        assert restored.request == request
        for out_restored, out_original in zip(
            restored.outcomes, result.outcomes
        ):
            assert np.array_equal(out_restored.values, out_original.values)
            assert out_restored.query == out_original.query

    def test_result_round_trip_preserves_shift_flags(self, world):
        # pi_1 partitions per edge, so a periodic multi-edge query
        # shift-and-enlarges every sub-query after the first; the wire
        # form must carry that flag or reconstructed queries drift.
        dataset, index = world
        trip = max(dataset.trajectories, key=len)
        request = TripRequest(
            path=trip.path[:5],
            interval=PeriodicInterval.around(trip.start_time, 1800),
        )
        db = open_db(
            index, network=dataset.network,
            config=EngineConfig(partitioner="pi_1"),
        )
        result = db.query(request)
        flags = [o.query.shift_applied for o in result.outcomes]
        assert any(flags), "expected shifted sub-queries from pi_1"
        restored = TripQueryResult.from_dict(result.to_dict())
        assert [
            o.query.shift_applied for o in restored.outcomes
        ] == flags
        assert [o.query for o in restored.outcomes] == [
            o.query for o in result.outcomes
        ]

    def test_result_wire_form_is_json_compatible(self, world):
        import json

        dataset, index = world
        request = random_requests(dataset, index, seed=9, n=1)[0]
        result = open_db(index, network=dataset.network).query(request)
        payload = json.loads(json.dumps(result.to_dict()))
        assert TripQueryResult.from_dict(payload).histogram == (
            result.histogram
        )


class TestLegacySurfaceRemoved:
    """The PR-3 shims were removed on the ROADMAP schedule (PR 5):
    ``repro.api`` is the only query surface left."""

    def test_engine_query_rejects_legacy_spq_with_typed_error(self, world):
        from repro import QueryEngine
        from repro.errors import RequestValidationError

        dataset, index = world
        engine = QueryEngine(index, dataset.network)
        spq = StrictPathQuery(path=(1,), interval=FixedInterval(0, 10))
        with pytest.raises(RequestValidationError, match="from_spq"):
            engine.query(spq)

    def test_trip_query_entry_points_are_gone(self, world):
        from repro import QueryEngine

        dataset, index = world
        engine = QueryEngine(index, dataset.network)
        service = TravelTimeService(index, dataset.network)
        assert not hasattr(engine, "trip_query")
        assert not hasattr(service, "trip_query")
        assert not hasattr(service, "trip_query_many")

    def test_legacy_engine_constructor_kwargs_rejected(self, world):
        from repro import QueryEngine

        dataset, index = world
        with pytest.raises(TypeError):
            QueryEngine(index, dataset.network, partitioner="pi_1")
        with pytest.raises(TypeError):
            TravelTimeService(index, dataset.network, partitioner="pi_1")

    def test_new_constructors_do_not_warn(self, world):
        from repro import QueryEngine

        dataset, index = world
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            QueryEngine(index, dataset.network, EngineConfig())
            TravelTimeService(index, dataset.network, config=EngineConfig())
            open_db(index, network=dataset.network)

    def test_non_config_positional_rejected_with_clear_error(self, world):
        from repro import QueryEngine

        dataset, index = world
        with pytest.raises(TypeError, match="EngineConfig"):
            QueryEngine(index, dataset.network, 42)
        # The pre-PR-3 positional-partitioner form is gone too.
        with pytest.raises(TypeError, match="EngineConfig"):
            QueryEngine(index, dataset.network, "pi_1")


class TestPerRequestEstimator:
    def test_request_mode_overrides_engine_default(self, world):
        dataset, index = world
        db = open_db(
            index,
            network=dataset.network,
            cache=None,
            config=EngineConfig(estimator_mode="CSS-Fast"),
        )
        base = random_requests(dataset, index, seed=13, n=6)
        request = next((r for r in base if r.beta), base[0])
        if request.beta is None:
            request = TripRequest(
                path=request.path, interval=request.interval, beta=10
            )
        with_default = db.query(request)
        disabled = db.query(request.with_estimator(EstimatorMode.NONE))
        # Disabling the estimator must not change the shape of a query
        # that never skipped; when skips fired, the counters must differ.
        if with_default.n_estimator_skips:
            assert disabled.n_estimator_skips == 0
        else:
            assert disabled.histogram == with_default.histogram

    def test_estimators_are_cached_per_mode(self, world):
        dataset, index = world
        db = open_db(index, network=dataset.network)
        request = random_requests(dataset, index, seed=14, n=1)[0]
        first = db.query(request.with_estimator("ISA"))
        second = db.query(request.with_estimator("ISA"))
        assert first.histogram == second.histogram
        assert len(db.engine._estimators) == 1


class TestConfigStore:
    """ISSUE 9: EngineConfig.store as the open_db index fallback."""

    def test_invalid_store_rejected(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(store="")
        with pytest.raises(ConfigurationError):
            EngineConfig(store=123)

    def test_store_excluded_from_cache_identity(self, tmp_path):
        with_store = EngineConfig(store=str(tmp_path))
        assert with_store.cache_identity() == EngineConfig().cache_identity()

    def test_open_db_requires_some_index(self, world):
        dataset, _ = world
        with pytest.raises(ConfigurationError, match="needs an index"):
            open_db(network=dataset.network)

    def test_open_db_falls_back_to_config_store(self, world, tmp_path):
        dataset, index = world
        target = index.save(tmp_path / "idx")
        config = EngineConfig(store=str(target))
        db_implicit = open_db(network=dataset.network, config=config)
        db_explicit = open_db(target, network=dataset.network)
        requests = random_requests(dataset, index, seed=11, n=4)
        for a, b in zip(
            db_implicit.query_many(requests), db_explicit.query_many(requests)
        ):
            assert a.histogram == b.histogram
            assert a.estimated_mean == b.estimated_mean

    def test_explicit_argument_wins_over_config(self, world, tmp_path):
        dataset, index = world
        config = EngineConfig(store=str(tmp_path / "does-not-exist"))
        db = open_db(index, network=dataset.network, config=config)
        requests = random_requests(dataset, index, seed=12, n=2)
        assert len(db.query_many(requests)) == 2
