"""Validation and wire-form tests for the typed query objects."""

import dataclasses

import pytest

from repro import EngineConfig, EstimatorMode, TripRequest
from repro.core.intervals import FixedInterval, PeriodicInterval
from repro.errors import (
    ConfigurationError,
    QueryError,
    RequestValidationError,
)


def request(**overrides):
    base = dict(
        path=(1, 2, 3),
        interval=PeriodicInterval(start_tod=28_800, duration=900),
        user=7,
        exclude_ids=(9, 3),
        beta=20,
        estimator="CSS-Fast",
    )
    base.update(overrides)
    return TripRequest(**base)


class TestTripRequestValidation:
    def test_empty_path_raises_typed_error(self):
        with pytest.raises(RequestValidationError):
            request(path=())

    def test_non_integer_path_raises_typed_error(self):
        with pytest.raises(RequestValidationError):
            request(path=("a", "b"))

    def test_string_path_rejected_not_decomposed(self):
        # tuple("12") would silently become edges (1, 2).
        with pytest.raises(RequestValidationError):
            request(path="12")

    def test_non_iterable_path_raises_typed_error(self):
        with pytest.raises(RequestValidationError):
            request(path=5)

    def test_beta_zero_raises_typed_error(self):
        with pytest.raises(RequestValidationError):
            request(beta=0)

    def test_beta_negative_raises_typed_error(self):
        with pytest.raises(RequestValidationError):
            request(beta=-5)

    def test_non_numeric_beta_and_user_raise_typed_error(self):
        with pytest.raises(RequestValidationError):
            request(beta="lots")
        with pytest.raises(RequestValidationError):
            request(user="alice")

    def test_non_numeric_user_in_wire_form_raises_typed_error(self):
        payload = request().to_dict()
        payload["user"] = "alice"
        with pytest.raises(RequestValidationError):
            TripRequest.from_dict(payload)

    def test_unknown_estimator_mode_raises_typed_error(self):
        with pytest.raises(RequestValidationError):
            request(estimator="CSS-Fancy")

    def test_non_interval_rejected(self):
        with pytest.raises(RequestValidationError):
            request(interval=(0, 100))

    def test_validation_errors_are_query_errors_not_bare_valueerror(self):
        # The CLI contract maps ReproError (and only ReproError) to
        # exit 1; every validation failure must be inside that tree.
        for bad in (
            dict(path=()),
            dict(beta=0),
            dict(estimator="nope"),
            dict(interval=None),
        ):
            with pytest.raises(QueryError):
                request(**bad)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            request().path = (5,)

    def test_canonicalisation(self):
        r = request(path=[1.0, 2, 3], exclude_ids=[5, 1, 5])
        assert r.path == (1, 2, 3)
        assert r.exclude_ids == (1, 5)
        assert r.estimator is EstimatorMode.CSS_FAST

    def test_fractional_ids_rejected_not_truncated(self):
        # int(1.9) would silently answer a query about edge 1.
        with pytest.raises(RequestValidationError):
            request(path=(1.9, 2))
        with pytest.raises(RequestValidationError):
            request(user=7.5)
        with pytest.raises(RequestValidationError):
            request(beta=1.9)
        with pytest.raises(RequestValidationError):
            request(exclude_ids=(3.7,))
        payload = request().to_dict()
        payload["path"] = [3.7]
        with pytest.raises(RequestValidationError):
            TripRequest.from_dict(payload)

    def test_string_exclude_ids_rejected_not_decomposed(self):
        # tuple("307") would silently exclude trajectories 3, 0, 7.
        with pytest.raises(RequestValidationError):
            request(exclude_ids="307")
        payload = request().to_dict()
        payload["exclude_ids"] = "307"
        with pytest.raises(RequestValidationError):
            TripRequest.from_dict(payload)

    def test_equal_requests_compare_and_hash_equal(self):
        assert request() == request(exclude_ids=(3, 9, 9))
        assert hash(request()) == hash(request(exclude_ids=(3, 9, 9)))


class TestEstimatorMode:
    def test_coerce_accepts_value_strings_and_members(self):
        assert EstimatorMode.coerce("BT-Acc") is EstimatorMode.BT_ACC
        assert EstimatorMode.coerce(EstimatorMode.ISA) is EstimatorMode.ISA
        assert EstimatorMode.coerce(None) is None

    def test_coerce_rejects_unknown(self):
        with pytest.raises(RequestValidationError):
            EstimatorMode.coerce("turbo")
        with pytest.raises(RequestValidationError):
            EstimatorMode.coerce(42)

    def test_none_mode_disables_per_request(self):
        assert request(estimator=EstimatorMode.NONE).estimator is (
            EstimatorMode.NONE
        )

    def test_enum_stays_in_sync_with_core_modes(self):
        # core's ESTIMATOR_MODES is what CardinalityEstimator validates
        # against; the typed enum must cover exactly those plus "none",
        # or a new core mode becomes unreachable through the typed API.
        from repro import ESTIMATOR_MODES

        assert {mode.value for mode in EstimatorMode} - {"none"} == set(
            ESTIMATOR_MODES
        )


class TestWireForm:
    @pytest.mark.parametrize(
        "overrides",
        [
            {},
            dict(interval=FixedInterval(0, 86_400)),
            dict(user=None, beta=None, estimator=None, exclude_ids=()),
            dict(estimator=EstimatorMode.NONE),
        ],
    )
    def test_round_trip_equality(self, overrides):
        r = request(**overrides)
        assert TripRequest.from_dict(r.to_dict()) == r

    def test_wire_form_is_json_compatible(self):
        import json

        payload = request().to_dict()
        assert TripRequest.from_dict(json.loads(json.dumps(payload))) == (
            request()
        )

    def test_inverted_fixed_interval_rejected(self):
        payload = request().to_dict()
        payload["interval"] = {"type": "fixed", "start": 100, "end": 100}
        with pytest.raises(RequestValidationError):
            TripRequest.from_dict(payload)
        payload["interval"] = {"type": "fixed", "start": 100, "end": 50}
        with pytest.raises(RequestValidationError):
            TripRequest.from_dict(payload)

    def test_zero_width_periodic_interval_rejected(self):
        payload = request().to_dict()
        payload["interval"] = {"type": "periodic", "start_tod": 0,
                               "duration": 0}
        with pytest.raises(RequestValidationError):
            TripRequest.from_dict(payload)

    def test_unknown_interval_type_rejected(self):
        payload = request().to_dict()
        payload["interval"] = {"type": "lunar", "start": 0, "end": 10}
        with pytest.raises(RequestValidationError):
            TripRequest.from_dict(payload)

    def test_unknown_fields_rejected(self):
        payload = request().to_dict()
        payload["surprise"] = 1
        with pytest.raises(RequestValidationError):
            TripRequest.from_dict(payload)

    def test_missing_fields_rejected(self):
        with pytest.raises(RequestValidationError):
            TripRequest.from_dict({"path": [1]})

    @pytest.mark.parametrize("bad_path", ["12", 5, {"edge": 1}])
    def test_malformed_path_payloads_rejected(self, bad_path):
        payload = request().to_dict()
        payload["path"] = bad_path
        with pytest.raises(RequestValidationError):
            TripRequest.from_dict(payload)

    @pytest.mark.parametrize("bad", [0, 1, False, ""])
    def test_scalar_exclude_ids_payload_rejected_even_when_falsy(self, bad):
        # {"exclude_ids": 0} must not silently mean "no exclusions" —
        # 0 is a valid trajectory id the client meant to exclude.
        payload = request().to_dict()
        payload["exclude_ids"] = bad
        with pytest.raises(RequestValidationError):
            TripRequest.from_dict(payload)

    def test_fractional_interval_bounds_rejected(self):
        payload = request().to_dict()
        payload["interval"] = {"type": "periodic", "start_tod": 28800.9,
                               "duration": 900.7}
        with pytest.raises(RequestValidationError):
            TripRequest.from_dict(payload)
        payload["interval"] = {"type": "fixed", "start": 0.5, "end": 10}
        with pytest.raises(RequestValidationError):
            TripRequest.from_dict(payload)


class TestEngineConfig:
    def test_defaults_valid_and_frozen(self):
        config = EngineConfig()
        assert config.partitioner == "pi_Z"
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.partitioner = "pi_1"

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(partitioner="pi_fancy"),
            dict(splitter="alphabetical"),
            dict(ladder=()),
            dict(ladder=(900, 900)),
            dict(ladder=(900, 600)),
            dict(ladder=(0, 900)),
            dict(bucket_width_s=0),
            dict(estimator_mode="turbo"),
            dict(user_selectivity=0.0),
            dict(user_selectivity=1.5),
            dict(max_relaxations=0),
            dict(n_workers=0),
            dict(cache_entries=0),
        ],
    )
    def test_invalid_configs_raise_typed_error(self, overrides):
        with pytest.raises(ConfigurationError):
            EngineConfig(**overrides)

    def test_estimator_mode_coerced(self):
        assert EngineConfig(estimator_mode="ISA").estimator_mode is (
            EstimatorMode.ISA
        )

    def test_replace_revalidates(self):
        config = EngineConfig()
        assert config.replace(partitioner="pi_1").partitioner == "pi_1"
        with pytest.raises(ConfigurationError):
            config.replace(splitter="nope")

    def test_equality_and_hash(self):
        assert EngineConfig() == EngineConfig()
        assert hash(EngineConfig(n_workers=2)) == hash(
            EngineConfig(n_workers=2)
        )

    def test_beta_policy_participates_in_identity(self):
        # Policies change effective betas and therefore answers; two
        # configs differing only in policy must not collide on the
        # (future) external cache-tier key.
        policy = lambda path, beta: beta
        assert EngineConfig(beta_policy=policy) != EngineConfig()
        assert EngineConfig(beta_policy=policy) == EngineConfig(
            beta_policy=policy
        )


class TestDeprecationShimsValidation:
    """The legacy surfaces must keep raising *typed* errors too."""

    def test_legacy_spq_empty_path(self):
        from repro import StrictPathQuery

        with pytest.raises(QueryError):
            StrictPathQuery(path=(), interval=FixedInterval(0, 10))

    def test_legacy_spq_bad_beta(self):
        from repro import StrictPathQuery

        with pytest.raises(QueryError):
            StrictPathQuery(path=(1,), interval=FixedInterval(0, 10), beta=0)

    def test_legacy_intervals_inverted(self):
        from repro.errors import IntervalError

        with pytest.raises(IntervalError):
            FixedInterval(10, 10)
        with pytest.raises(IntervalError):
            PeriodicInterval(start_tod=0, duration=0)

    def test_legacy_engine_kwargs_are_gone(self):
        """The PR-3 kwarg shims were removed on schedule (PR 5): the
        engine takes an EngineConfig, full stop."""
        from repro import QueryEngine, generate_dataset, SNTIndex

        dataset = generate_dataset("tiny", seed=0)
        index = SNTIndex.build(
            dataset.trajectories, dataset.network.alphabet_size
        )
        with pytest.raises(TypeError):
            QueryEngine(index, dataset.network, splitter="alphabetical")
