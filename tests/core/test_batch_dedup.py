"""Batch-executor equivalence: dedup on/off is sequential Procedure 6.

The ISSUE 5 acceptance property: the staged batch executor
(``EngineConfig(dedup_subqueries=True)``) — which collects the planned
sub-queries of all in-flight trips, scans each unique
``(path, interval, user, beta, exclude)`` task once, and fans the
answer out to every owner — produces *byte-identical* histograms and
outcomes to the per-trip sequential loop, across estimator modes,
sharded vs. monolithic readers, and relaxation-triggering workloads.
The only permitted difference is accounting: per trip,
``n_index_scans + n_cache_hits`` equals the uncached sequential scan
count exactly (a deduplicated fan-out is a hit against the batch's own
just-scanned answer).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    EngineConfig,
    FixedInterval,
    PeriodicInterval,
    QueryEngine,
    ShardedSNTIndex,
    SNTIndex,
    TravelTimeDB,
    TripRequest,
    generate_dataset,
)

PARTITION_DAYS = 7
N_SHARDS = 3
ESTIMATOR_MODES = (None, "CSS-Fast", "BT-Acc")


@pytest.fixture(scope="module")
def world():
    dataset = generate_dataset("tiny", seed=0)
    mono = SNTIndex.build(
        dataset.trajectories,
        dataset.network.alphabet_size,
        partition_days=PARTITION_DAYS,
    )
    sharded = ShardedSNTIndex.build(
        dataset.trajectories,
        dataset.network.alphabet_size,
        n_shards=N_SHARDS,
        partition_days=PARTITION_DAYS,
    )
    trips = [tr for tr in dataset.trajectories if len(tr) >= 6]
    return dataset, mono, sharded, trips


def assert_equivalent(sequential, batched):
    """Byte-identical answers; scans+hits invariant per trip."""
    assert len(batched) == len(sequential)
    for expected, actual in zip(sequential, batched):
        assert actual.histogram == expected.histogram
        assert actual.histogram.as_dict() == expected.histogram.as_dict()
        assert actual.estimated_mean == expected.estimated_mean
        assert actual.n_estimator_skips == expected.n_estimator_skips
        assert expected.n_cache_hits == 0  # reference is uncached
        assert (
            actual.n_index_scans + actual.n_cache_hits
            == expected.n_index_scans
        )
        assert len(actual.outcomes) == len(expected.outcomes)
        for out_expected, out_actual in zip(
            expected.outcomes, actual.outcomes
        ):
            assert out_actual.query == out_expected.query
            assert np.array_equal(out_actual.values, out_expected.values)
            assert out_actual.histogram == out_expected.histogram
            assert out_actual.from_fallback == out_expected.from_fallback


def draw_workload(data, index, trips):
    """A repeated-trip batch mixing easy, shared, and doomed sub-queries."""
    requests = []
    for _ in range(data.draw(st.integers(2, 4), label="distinct trips")):
        trip = trips[data.draw(st.integers(0, len(trips) - 1))]
        length = data.draw(st.integers(2, min(len(trip.path), 6)))
        shape = data.draw(st.sampled_from(("fixed", "periodic", "doomed")))
        if shape == "fixed":
            interval = FixedInterval(index.t_min, index.t_max)
            beta = data.draw(st.sampled_from((None, 5)))
        elif shape == "periodic":
            interval = PeriodicInterval.around(trip.start_time, 900)
            beta = data.draw(st.sampled_from((None, 10)))
        else:
            # Relaxation trigger: a narrow window that cannot satisfy a
            # huge beta walks the full ladder, splits, and ends in the
            # drop-everything fallback — per trip, inside the batch.
            interval = PeriodicInterval.around(trip.start_time, 300)
            beta = 200
        request = TripRequest(
            path=trip.path[:length],
            interval=interval,
            user=trip.user_id if data.draw(st.booleans()) else None,
            exclude_ids=(trip.traj_id,) if data.draw(st.booleans()) else (),
            beta=beta,
        )
        requests.extend([request] * data.draw(st.integers(1, 3)))
    return data.draw(st.permutations(requests))


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_batch_dedup_bit_identical_to_sequential(world, data):
    dataset, mono, sharded, trips = world
    index = sharded if data.draw(st.booleans(), label="sharded") else mono
    config = EngineConfig(
        partitioner=data.draw(st.sampled_from(("pi_1", "pi_Z"))),
        splitter=data.draw(st.sampled_from(("regular", "longest_prefix"))),
        estimator_mode=data.draw(st.sampled_from(ESTIMATOR_MODES)),
    )
    requests = draw_workload(data, index, trips)

    # Reference: the per-trip sequential loop, uncached (the paper's
    # Procedure 6 exactly, one trip at a time).
    engine = QueryEngine(index, dataset.network, config)
    sequential = [engine.query(request) for request in requests]

    # Dedup on, with and without a shared cache backend (the latter
    # exercises in-batch-only dedup over per-trip caches).
    for cache in ("default", None):
        db = TravelTimeDB(
            index,
            dataset.network,
            config=config.replace(dedup_subqueries=True),
            cache=cache,
        )
        results = db.query_many(requests)
        assert_equivalent(sequential, results)
        stats = db.last_dedup_stats
        assert stats is not None
        assert stats.n_trips == len(requests)
        assert stats.unique_subqueries <= stats.planned_subqueries
        # Cross-check the executor's accounting against the per-result
        # counters: every demand resumes exactly once, as a scan or as
        # a hit (cache hit or dedup fan-out).
        assert stats.planned_subqueries == sum(
            r.n_index_scans + r.n_cache_hits for r in results
        )
        assert stats.n_index_scans == sum(
            r.n_index_scans for r in results
        )
        assert stats.cache_hits + stats.scans_saved == sum(
            r.n_cache_hits for r in results
        )
        # Every unique planned sub-query cost at most one scan.
        assert stats.n_index_scans <= stats.unique_subqueries

    # Dedup off over a shared cache: the PR-1 path, same equivalence.
    plain = TravelTimeDB(index, dataset.network, config=config)
    assert_equivalent(sequential, plain.query_many(requests))
    assert plain.last_dedup_stats is None


def test_dedup_scans_repeated_batch_once(world):
    """k copies of one request cost exactly one cold scan set."""
    dataset, mono, _, trips = world
    trip = trips[0]
    request = TripRequest(
        path=trip.path[:4],
        interval=PeriodicInterval.around(trip.start_time, 900),
        beta=10,
    )
    config = EngineConfig(dedup_subqueries=True)
    solo = TravelTimeDB(
        mono, dataset.network, config=config
    ).query_many([request])
    batch_db = TravelTimeDB(mono, dataset.network, config=config)
    results = batch_db.query_many([request] * 5)
    stats = batch_db.last_dedup_stats
    assert stats.n_index_scans == sum(r.n_index_scans for r in solo)
    assert stats.scans_saved == 4 * stats.n_index_scans
    for result in results:
        assert result.histogram == solo[0].histogram


def test_stream_dedup_preserves_order_and_answers(world):
    dataset, mono, _, trips = world
    requests = []
    for trip in trips[:6]:
        requests.append(
            TripRequest(
                path=trip.path[:4],
                interval=PeriodicInterval.around(trip.start_time, 900),
                beta=10,
            )
        )
    requests = requests * 2  # repeats across window chunks
    config = EngineConfig(dedup_subqueries=True)
    reference = TravelTimeDB(
        mono, dataset.network, cache=None
    ).query_many(requests)
    db = TravelTimeDB(mono, dataset.network, config=config)
    streamed = list(db.stream(iter(requests), n_workers=2, window=4))
    assert [r.request for r in streamed] == requests
    for expected, actual in zip(reference, streamed):
        assert actual.histogram == expected.histogram
        assert actual.estimated_mean == expected.estimated_mean
    # The stream's dedup accounting aggregates over every window chunk,
    # not just the final one.
    stats = db.last_dedup_stats
    assert stats is not None
    assert stats.n_trips == len(requests)
