"""Integration tests: the QueryEngine against the naive oracle and the
relaxation behaviour on realistic data."""

import numpy as np
import pytest

from repro import (
    CardinalityEstimator,
    EngineConfig,
    FixedInterval,
    PeriodicInterval,
    QueryEngine,
    SNTIndex,
    StrictPathQuery,
    TripRequest,
    generate_dataset,
    naive_travel_times,
)
from repro.errors import QueryError
from repro.sntindex import get_travel_times

from tests.typed_api import run_trip


@pytest.fixture(scope="module")
def world():
    dataset = generate_dataset("tiny", seed=0)
    index = SNTIndex.build(
        dataset.trajectories, dataset.network.alphabet_size
    )
    return dataset, index


class TestOracleAgreement:
    """get_travel_times must return exactly what the linear scan returns."""

    def test_random_subpath_queries(self, world):
        dataset, index = world
        rng = np.random.default_rng(1)
        checked = 0
        for _ in range(150):
            trajectory = dataset.trajectories[
                int(rng.integers(len(dataset.trajectories)))
            ]
            l = len(trajectory)
            i = int(rng.integers(0, l))
            j = int(rng.integers(i + 1, min(l, i + 6) + 1))
            interval = (
                PeriodicInterval.around(trajectory.start_time, 1800)
                if rng.random() < 0.5
                else FixedInterval(0, index.t_max)
            )
            user = trajectory.user_id if rng.random() < 0.3 else None
            beta = [None, 5, 20][int(rng.integers(3))]
            query = StrictPathQuery(
                path=trajectory.path[i:j],
                interval=interval,
                user=user,
                beta=beta,
            )
            got = sorted(get_travel_times(index, query).values.tolist())
            want = sorted(
                naive_travel_times(dataset.trajectories, query).tolist()
            )
            assert got == want, query
            checked += 1
        assert checked == 150

    def test_exclusion_matches_oracle(self, world):
        dataset, index = world
        trajectory = dataset.trajectories[10]
        query = StrictPathQuery(
            path=trajectory.path[:2], interval=FixedInterval(0, index.t_max)
        )
        got = sorted(
            get_travel_times(
                index, query, exclude_ids=(trajectory.traj_id,)
            ).values.tolist()
        )
        want = sorted(
            naive_travel_times(
                dataset.trajectories, query, exclude_ids=(trajectory.traj_id,)
            ).tolist()
        )
        assert got == want


class TestTripQuery:
    @pytest.fixture(scope="class")
    def engine(self, world):
        dataset, index = world
        return QueryEngine(index, dataset.network, EngineConfig(partitioner="pi_Z"))

    def long_trip(self, dataset, min_len=8):
        return next(tr for tr in dataset.trajectories if len(tr) >= min_len)

    def test_returns_nonempty_histogram(self, world, engine):
        dataset, _ = world
        trip = self.long_trip(dataset)
        result = run_trip(engine,
            StrictPathQuery(
                path=trip.path,
                interval=PeriodicInterval.around(trip.start_time, 900),
                beta=10,
            ),
            exclude_ids=(trip.traj_id,),
        )
        assert result.histogram.total > 0
        assert result.outcomes

    def test_final_subpaths_cover_path_in_order(self, world, engine):
        dataset, _ = world
        trip = self.long_trip(dataset)
        result = run_trip(engine,
            StrictPathQuery(
                path=trip.path,
                interval=PeriodicInterval.around(trip.start_time, 900),
                beta=10,
            ),
            exclude_ids=(trip.traj_id,),
        )
        flattened = tuple(
            edge for subpath in result.final_subpaths for edge in subpath
        )
        assert flattened == trip.path

    def test_estimated_mean_positive(self, world, engine):
        dataset, _ = world
        trip = self.long_trip(dataset)
        result = run_trip(engine,
            StrictPathQuery(
                path=trip.path,
                interval=PeriodicInterval.around(trip.start_time, 900),
                beta=5,
            ),
            exclude_ids=(trip.traj_id,),
        )
        assert result.estimated_mean > 0
        assert result.mean_subpath_length >= 1.0

    def test_all_partitioners_run(self, world):
        dataset, index = world
        trip = self.long_trip(dataset)
        query = StrictPathQuery(
            path=trip.path,
            interval=PeriodicInterval.around(trip.start_time, 900),
            beta=5,
        )
        for name in (
            "pi_1", "pi_2", "pi_3", "pi_C", "pi_Z", "pi_ZC", "pi_N", "pi_MDM",
        ):
            engine = QueryEngine(index, dataset.network, EngineConfig(partitioner=name))
            result = run_trip(engine, query, exclude_ids=(trip.traj_id,))
            assert result.histogram.total > 0, name

    def test_longest_prefix_splitter_runs(self, world):
        dataset, index = world
        trip = self.long_trip(dataset)
        engine = QueryEngine(
            index,
            dataset.network,
            EngineConfig(partitioner="pi_N", splitter="longest_prefix"),
        )
        result = run_trip(engine,
            StrictPathQuery(
                path=trip.path,
                interval=PeriodicInterval.around(trip.start_time, 900),
                beta=10,
            ),
            exclude_ids=(trip.traj_id,),
        )
        assert result.histogram.total > 0
        flattened = tuple(
            edge for subpath in result.final_subpaths for edge in subpath
        )
        assert flattened == trip.path

    def test_user_filter_query(self, world):
        dataset, index = world
        trip = self.long_trip(dataset)
        engine = QueryEngine(index, dataset.network, EngineConfig(partitioner="pi_MDM"))
        result = run_trip(engine,
            StrictPathQuery(
                path=trip.path,
                interval=PeriodicInterval.around(trip.start_time, 900),
                user=trip.user_id,
                beta=5,
            ),
            exclude_ids=(trip.traj_id,),
        )
        assert result.histogram.total > 0

    def test_spq_only_query(self, world):
        dataset, index = world
        trip = self.long_trip(dataset)
        engine = QueryEngine(index, dataset.network, EngineConfig(partitioner="pi_N"))
        result = run_trip(engine,
            StrictPathQuery(
                path=trip.path,
                interval=FixedInterval(0, index.t_max),
                beta=20,
            ),
            exclude_ids=(trip.traj_id,),
        )
        assert result.histogram.total > 0

    def test_unknown_splitter_rejected(self, world):
        dataset, index = world
        with pytest.raises(QueryError):
            QueryEngine(
                index, dataset.network, EngineConfig(splitter="alphabetical")
            )

    def test_estimator_skips_reduce_scans(self, world):
        dataset, index = world
        trip = self.long_trip(dataset)
        query = StrictPathQuery(
            path=trip.path,
            interval=PeriodicInterval.around(trip.start_time, 900),
            beta=30,
        )
        plain = QueryEngine(index, dataset.network, EngineConfig(partitioner="pi_N"))
        with_est = QueryEngine(
            index,
            dataset.network,
            EngineConfig(partitioner="pi_N"),
            estimator=CardinalityEstimator(index, "CSS-Acc"),
        )
        r_plain = run_trip(plain, query, exclude_ids=(trip.traj_id,))
        r_est = run_trip(with_est, query, exclude_ids=(trip.traj_id,))
        assert r_est.n_estimator_skips > 0
        assert r_est.n_index_scans <= r_plain.n_index_scans
        # Both produce answers for the same path.
        assert tuple(
            e for p in r_est.final_subpaths for e in p
        ) == trip.path

    def test_deterministic_given_same_inputs(self, world):
        dataset, index = world
        trip = self.long_trip(dataset)
        engine = QueryEngine(index, dataset.network, EngineConfig(partitioner="pi_C"))
        query = StrictPathQuery(
            path=trip.path,
            interval=PeriodicInterval.around(trip.start_time, 900),
            beta=10,
        )
        r1 = run_trip(engine, query, exclude_ids=(trip.traj_id,))
        r2 = run_trip(engine, query, exclude_ids=(trip.traj_id,))
        assert r1.histogram == r2.histogram
        assert r1.estimated_mean == r2.estimated_mean


class TestEngineFallbacks:
    def test_path_without_any_data_uses_speed_limits(self, world):
        dataset, index = world
        network = dataset.network
        # Find an edge never traversed by any trajectory.
        traversed = set()
        for trajectory in dataset.trajectories:
            traversed.update(trajectory.path)
        unused = [e for e in network.edge_ids() if e not in traversed]
        if not unused:
            pytest.skip("every edge traversed at this scale")
        engine = QueryEngine(index, network, EngineConfig(partitioner="pi_N"))
        result = run_trip(engine,
            StrictPathQuery(
                path=(unused[0],),
                interval=PeriodicInterval.around(8 * 3600, 900),
                beta=10,
            )
        )
        assert len(result.outcomes) == 1
        assert result.outcomes[0].from_fallback
        expected = network.estimate_tt(unused[0])
        assert result.outcomes[0].values.tolist() == [expected]
