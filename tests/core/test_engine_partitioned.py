"""The engine must answer identically over FULL and partitioned indexes."""

import pytest

from repro import (
    EngineConfig,
    PeriodicInterval,
    QueryEngine,
    SNTIndex,
    StrictPathQuery,
    TripRequest,
    generate_dataset,
)

from tests.typed_api import run_trip


@pytest.fixture(scope="module")
def world():
    dataset = generate_dataset("tiny", seed=0)
    full = SNTIndex.build(
        dataset.trajectories, dataset.network.alphabet_size
    )
    weekly = SNTIndex.build(
        dataset.trajectories,
        dataset.network.alphabet_size,
        partition_days=7,
    )
    return dataset, full, weekly


def test_partition_count(world):
    _, full, weekly = world
    assert full.n_partitions == 1
    assert weekly.n_partitions > 1


@pytest.mark.parametrize("partitioner", ["pi_Z", "pi_C", "pi_N"])
def test_trip_queries_identical(world, partitioner):
    dataset, full, weekly = world
    engine_full = QueryEngine(
        full, dataset.network, EngineConfig(partitioner=partitioner)
    )
    engine_weekly = QueryEngine(
        weekly, dataset.network, EngineConfig(partitioner=partitioner)
    )
    trips = [tr for tr in dataset.trajectories if len(tr) >= 8][:15]
    for trip in trips:
        query = StrictPathQuery(
            path=trip.path,
            interval=PeriodicInterval.around(trip.start_time, 900),
            beta=10,
        )
        a = run_trip(engine_full, query, exclude_ids=(trip.traj_id,))
        b = run_trip(engine_weekly, query, exclude_ids=(trip.traj_id,))
        assert a.histogram == b.histogram
        assert a.estimated_mean == pytest.approx(b.estimated_mean)
        assert [o.query.path for o in a.outcomes] == [
            o.query.path for o in b.outcomes
        ]


def test_estimator_works_on_partitioned_index(world):
    from repro import CardinalityEstimator

    dataset, _, weekly = world
    engine = QueryEngine(
        weekly,
        dataset.network,
        EngineConfig(partitioner="pi_Z"),
        estimator=CardinalityEstimator(weekly, "CSS-Acc"),
    )
    trip = next(tr for tr in dataset.trajectories if len(tr) >= 8)
    result = run_trip(engine,
        StrictPathQuery(
            path=trip.path,
            interval=PeriodicInterval.around(trip.start_time, 900),
            beta=10,
        ),
        exclude_ids=(trip.traj_id,),
    )
    assert result.histogram.total > 0
