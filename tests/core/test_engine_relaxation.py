"""White-box tests of the engine's relaxation behaviour on crafted data.

Each scenario constructs a minimal trajectory set whose coverage forces a
specific relaxation path through Procedure 1: widen, split, drop-user,
fixed fallback, and the shift-and-enlarge adaptation.
"""

import numpy as np
import pytest

from repro import (
    EngineConfig,
    FixedInterval,
    PeriodicInterval,
    QueryEngine,
    SNTIndex,
    StrictPathQuery,
    TripRequest,
)
from repro.config import SECONDS_PER_DAY
from repro.network import Edge, RoadCategory, RoadNetwork, ZoneType
from repro.trajectories import Trajectory, TrajectoryPoint, TrajectorySet

from tests.typed_api import run_trip

EIGHT = 8 * 3600


def chain_network(n_edges=4) -> RoadNetwork:
    """A simple chain network 0 -> 1 -> ... with edges 1..n."""
    network = RoadNetwork()
    for vertex in range(n_edges + 1):
        network.add_vertex(vertex, (float(vertex * 100), 0.0))
    for edge_id in range(1, n_edges + 1):
        network.add_edge(
            Edge(
                edge_id,
                edge_id - 1,
                edge_id,
                RoadCategory.PRIMARY,
                ZoneType.CITY,
                100.0,
                50.0,
            )
        )
    return network


def make_trajectory(traj_id, user, edges, start, tt=10):
    points = []
    t = start
    for edge in edges:
        points.append(TrajectoryPoint(edge, t, float(tt)))
        t += tt
    return Trajectory(traj_id, user, points)


def build(trajectories, network):
    return SNTIndex.build(
        TrajectorySet(trajectories), network.alphabet_size
    )


class TestWideningRelaxation:
    def test_widening_finds_offset_traffic(self):
        """Traffic 30 min after the window: found after one widen step."""
        network = chain_network(2)
        rows = [
            make_trajectory(d, 1, [1, 2], d * SECONDS_PER_DAY + EIGHT + 1800)
            for d in range(5)
        ]
        index = build(rows, network)
        engine = QueryEngine(index, network, EngineConfig(partitioner="pi_N"))
        result = run_trip(engine,
            StrictPathQuery(
                path=(1, 2),
                interval=PeriodicInterval(start_tod=EIGHT - 450, duration=900),
                beta=3,
            )
        )
        # One sub-query, answered after widening (no splits, no fallback).
        assert len(result.outcomes) == 1
        outcome = result.outcomes[0]
        assert outcome.query.path == (1, 2)
        assert not outcome.from_fallback
        assert outcome.query.interval.duration > 900
        assert outcome.values.size >= 3

    def test_no_widening_when_enough_data(self):
        network = chain_network(2)
        rows = [
            make_trajectory(d, 1, [1, 2], d * SECONDS_PER_DAY + EIGHT)
            for d in range(5)
        ]
        index = build(rows, network)
        engine = QueryEngine(index, network, EngineConfig(partitioner="pi_N"))
        result = run_trip(engine,
            StrictPathQuery(
                path=(1, 2),
                interval=PeriodicInterval.around(EIGHT + 450, 900),
                beta=3,
            )
        )
        assert result.outcomes[0].query.interval.duration == 900


class TestSplitRelaxation:
    def test_uncovered_full_path_splits(self):
        """No trajectory covers <1,2,3,4>; halves are covered."""
        network = chain_network(4)
        rows = [
            make_trajectory(d, 1, [1, 2], d * SECONDS_PER_DAY + EIGHT)
            for d in range(4)
        ] + [
            make_trajectory(10 + d, 1, [3, 4], d * SECONDS_PER_DAY + EIGHT)
            for d in range(4)
        ]
        index = build(rows, network)
        engine = QueryEngine(index, network, EngineConfig(partitioner="pi_N"))
        result = run_trip(engine,
            StrictPathQuery(
                path=(1, 2, 3, 4),
                interval=PeriodicInterval.around(EIGHT, 900),
                beta=2,
            )
        )
        assert [o.query.path for o in result.outcomes] == [(1, 2), (3, 4)]
        assert not any(o.from_fallback for o in result.outcomes)

    def test_split_children_restart_at_alpha_min(self):
        network = chain_network(4)
        rows = [
            make_trajectory(d, 1, [1, 2], d * SECONDS_PER_DAY + EIGHT)
            for d in range(4)
        ] + [
            make_trajectory(10 + d, 1, [3, 4], d * SECONDS_PER_DAY + EIGHT)
            for d in range(4)
        ]
        index = build(rows, network)
        engine = QueryEngine(index, network, EngineConfig(partitioner="pi_N"))
        result = run_trip(engine,
            StrictPathQuery(
                path=(1, 2, 3, 4),
                interval=PeriodicInterval.around(EIGHT, 900),
                beta=2,
            )
        )
        # First child is answered at alpha_min (enough data there).
        assert result.outcomes[0].query.interval.duration == 900


class TestUserDropAndFallback:
    def test_unknown_user_drops_filter(self):
        network = chain_network(1)
        rows = [
            make_trajectory(d, 1, [1], d * SECONDS_PER_DAY + EIGHT)
            for d in range(4)
        ]
        index = build(rows, network)
        engine = QueryEngine(index, network, EngineConfig(partitioner="pi_N"))
        result = run_trip(engine,
            StrictPathQuery(
                path=(1,),
                interval=PeriodicInterval.around(EIGHT, 900),
                user=999,  # nobody
                beta=2,
            )
        )
        # The user filter was dropped and real data returned.
        assert len(result.outcomes) == 1
        assert result.outcomes[0].query.user is None
        assert not result.outcomes[0].from_fallback

    def test_totally_empty_segment_hits_speed_limit_fallback(self):
        network = chain_network(2)
        rows = [
            make_trajectory(d, 1, [1], d * SECONDS_PER_DAY + EIGHT)
            for d in range(4)
        ]
        index = build(rows, network)
        engine = QueryEngine(index, network, EngineConfig(partitioner="pi_N"))
        result = run_trip(engine,
            StrictPathQuery(
                path=(2,),  # edge 2 has no data at all
                interval=PeriodicInterval.around(EIGHT, 900),
                beta=2,
            )
        )
        assert result.outcomes[0].from_fallback
        assert result.outcomes[0].values.tolist() == [
            pytest.approx(network.estimate_tt(2))
        ]

    def test_fallback_query_has_terminal_form(self):
        network = chain_network(2)
        rows = [
            make_trajectory(d, 1, [1], d * SECONDS_PER_DAY + EIGHT)
            for d in range(4)
        ]
        index = build(rows, network)
        engine = QueryEngine(index, network, EngineConfig(partitioner="pi_N"))
        result = run_trip(engine,
            StrictPathQuery(
                path=(2,),
                interval=PeriodicInterval.around(EIGHT, 900),
                beta=2,
            )
        )
        terminal = result.outcomes[0].query
        assert isinstance(terminal.interval, FixedInterval)
        assert terminal.beta is None
        assert terminal.user is None


class TestShiftAndEnlarge:
    def make_world(self):
        """Two-segment trips where segment 1 takes ~30 minutes."""
        network = RoadNetwork()
        for vertex in range(3):
            network.add_vertex(vertex, (float(vertex * 100), 0.0))
        # Segment 1 in CITY, segment 2 in RURAL: pi_Z splits them.
        network.add_edge(
            Edge(1, 0, 1, RoadCategory.PRIMARY, ZoneType.CITY, 100.0, 50.0)
        )
        network.add_edge(
            Edge(2, 1, 2, RoadCategory.PRIMARY, ZoneType.RURAL, 100.0, 50.0)
        )
        rows = []
        for d in range(6):
            start = d * SECONDS_PER_DAY + EIGHT
            rows.append(
                Trajectory(
                    d,
                    1,
                    [
                        TrajectoryPoint(1, start, 1800.0),
                        TrajectoryPoint(2, start + 1800, 60.0),
                    ],
                )
            )
        return network, build(rows, network)

    def test_second_subquery_interval_shifted(self):
        network, index = self.make_world()
        engine = QueryEngine(index, network, EngineConfig(partitioner="pi_Z"))
        result = run_trip(engine,
            StrictPathQuery(
                path=(1, 2),
                interval=PeriodicInterval.around(EIGHT + 450, 900),
                beta=3,
            )
        )
        assert len(result.outcomes) == 2
        first, second = result.outcomes
        # The second window starts ~30 min later (the travel time of the
        # first sub-path), so the entries at ~08:30 are inside it.
        assert second.query.shift_applied
        shift = (
            second.query.interval.start_tod - first.query.interval.start_tod
        ) % SECONDS_PER_DAY
        assert 1500 <= shift <= 2400
        assert not second.from_fallback
        assert second.values.size >= 3

    def test_disabled_adaptation_misses_offset_traffic(self):
        network, index = self.make_world()
        adaptive = QueryEngine(
            index,
            network,
            EngineConfig(partitioner="pi_Z", shift_and_enlarge=True),
        )
        static = QueryEngine(
            index,
            network,
            EngineConfig(partitioner="pi_Z", shift_and_enlarge=False),
        )
        query = StrictPathQuery(
            path=(1, 2),
            interval=PeriodicInterval.around(EIGHT + 450, 900),
            beta=3,
        )
        adaptive_result = run_trip(adaptive, query)
        static_result = run_trip(static, query)
        # Without adaptation the second sub-query needs widening: its
        # final interval is strictly larger.
        assert (
            static_result.outcomes[1].query.interval.size
            > adaptive_result.outcomes[1].query.interval.size
        )


class TestEstimatorPruning:
    def test_skip_count_tracks_prunes(self):
        from repro import CardinalityEstimator

        network = chain_network(2)
        rows = [
            make_trajectory(d, 1, [1, 2], d * SECONDS_PER_DAY + EIGHT)
            for d in range(3)
        ]
        index = build(rows, network)
        engine = QueryEngine(
            index,
            network,
            EngineConfig(partitioner="pi_N"),
            estimator=CardinalityEstimator(index, "CSS-Acc"),
        )
        # beta far above the data: the estimator prunes every periodic
        # attempt before any scan.
        result = run_trip(engine,
            StrictPathQuery(
                path=(1, 2),
                interval=PeriodicInterval.around(EIGHT, 900),
                beta=50,
            )
        )
        assert result.n_estimator_skips > 0
        assert result.histogram.total > 0
