"""Tests for the SPQ cardinality estimator (paper Section 4.4)."""

import numpy as np
import pytest

from repro import (
    CardinalityEstimator,
    FixedInterval,
    PeriodicInterval,
    SNTIndex,
    StrictPathQuery,
)
from repro.config import SECONDS_PER_DAY
from repro.errors import EstimatorError
from repro.trajectories import Trajectory, TrajectoryPoint, TrajectorySet


def build_index(kind="css", partition_days=None):
    """50 trajectories over edges 1-2, all entering around 08:00."""
    rows = []
    eight = 8 * 3600
    for d in range(50):
        day = d % 25
        start = day * SECONDS_PER_DAY + eight + (d % 7) * 60
        rows.append(
            Trajectory(
                d,
                d % 5,
                [
                    TrajectoryPoint(1, start, 10.0),
                    TrajectoryPoint(2, start + 10, 12.0),
                ],
            )
        )
    return SNTIndex.build(
        TrajectorySet(rows),
        alphabet_size=5,
        kind=kind,
        partition_days=partition_days,
        tod_bucket_s=600,
    )


@pytest.fixture(scope="module")
def index():
    return build_index()


class TestModes:
    def test_isa_mode_counts_traversals(self, index):
        estimator = CardinalityEstimator(index, "ISA")
        query = StrictPathQuery(
            path=(1, 2), interval=PeriodicInterval.around(8 * 3600, 900)
        )
        assert estimator.estimate(query) == 50.0

    def test_isa_overestimates_narrow_windows(self, index):
        # The paper: the ISA estimate is "on average off by an order of
        # magnitude" because it ignores temporal selectivity.
        isa = CardinalityEstimator(index, "ISA")
        accurate = CardinalityEstimator(index, "CSS-Acc")
        query = StrictPathQuery(
            path=(1, 2),
            interval=PeriodicInterval.around(20 * 3600, 900),  # no data
        )
        assert isa.estimate(query) == 50.0
        assert accurate.estimate(query) == pytest.approx(0.0, abs=1.0)

    def test_fast_mode_uniform_selectivity(self, index):
        estimator = CardinalityEstimator(index, "CSS-Fast")
        query = StrictPathQuery(
            path=(1, 2), interval=PeriodicInterval.around(8 * 3600, 900)
        )
        expected = 50 * 900 / SECONDS_PER_DAY
        assert estimator.estimate(query) == pytest.approx(expected)

    def test_acc_mode_uses_tod_histogram(self, index):
        estimator = CardinalityEstimator(index, "CSS-Acc")
        rush = StrictPathQuery(
            path=(1, 2), interval=PeriodicInterval.around(8 * 3600, 1800)
        )
        night = StrictPathQuery(
            path=(1, 2), interval=PeriodicInterval.around(3 * 3600, 1800)
        )
        # All traversals are around 08:00: Acc must rank rush >> night.
        assert estimator.estimate(rush) > 25
        assert estimator.estimate(night) == pytest.approx(0.0, abs=1.0)

    def test_acc_beats_fast_on_skewed_data(self, index):
        fast = CardinalityEstimator(index, "CSS-Fast")
        accurate = CardinalityEstimator(index, "CSS-Acc")
        query = StrictPathQuery(
            path=(1, 2), interval=PeriodicInterval.around(8 * 3600, 1800)
        )
        true_cardinality = 50  # every trajectory is inside the window
        fast_error = abs(fast.estimate(query) - true_cardinality)
        acc_error = abs(accurate.estimate(query) - true_cardinality)
        assert acc_error < fast_error

    def test_fixed_interval_css_exact(self, index):
        estimator = CardinalityEstimator(index, "CSS-Fast")
        # Half of the days.
        query = StrictPathQuery(
            path=(1, 2),
            interval=FixedInterval(0, 13 * SECONDS_PER_DAY),
        )
        estimate = estimator.estimate(query)
        assert estimate == pytest.approx(50 * 26 / 50, abs=4)

    def test_bt_fixed_interval_naive_formula(self):
        index = build_index(kind="btree")
        estimator = CardinalityEstimator(index, "BT-Fast")
        query = StrictPathQuery(
            path=(1, 2), interval=FixedInterval(0, 13 * SECONDS_PER_DAY)
        )
        estimate = estimator.estimate(query)
        assert 15 <= estimate <= 35  # ~half, via the min/max ratio

    def test_user_selectivity_tenth(self, index):
        plain = CardinalityEstimator(index, "CSS-Fast")
        query = StrictPathQuery(
            path=(1, 2), interval=PeriodicInterval.around(8 * 3600, 900)
        )
        with_user = StrictPathQuery(
            path=(1, 2),
            interval=PeriodicInterval.around(8 * 3600, 900),
            user=3,
        )
        assert plain.estimate(with_user) == pytest.approx(
            plain.estimate(query) / 10
        )

    def test_missing_path_estimates_zero(self, index):
        estimator = CardinalityEstimator(index, "CSS-Acc")
        query = StrictPathQuery(
            path=(2, 1), interval=FixedInterval(0, 100)
        )
        assert estimator.estimate(query) == 0.0


class TestValidation:
    def test_unknown_mode(self, index):
        with pytest.raises(EstimatorError):
            CardinalityEstimator(index, "LSTM")

    def test_css_mode_requires_css_index(self):
        index = build_index(kind="btree")
        with pytest.raises(EstimatorError):
            CardinalityEstimator(index, "CSS-Fast")

    def test_bt_mode_on_css_index_allowed(self, index):
        estimator = CardinalityEstimator(index, "BT-Fast")
        query = StrictPathQuery(
            path=(1,), interval=PeriodicInterval.around(8 * 3600, 900)
        )
        assert estimator.estimate(query) > 0

    def test_bad_user_selectivity(self, index):
        with pytest.raises(EstimatorError):
            CardinalityEstimator(index, "ISA", user_selectivity=0.0)


class TestPartitionedEstimates:
    def test_sum_over_partitions_close_to_full(self):
        full = build_index()
        partitioned = build_index(partition_days=7)
        assert partitioned.n_partitions > 1
        query = StrictPathQuery(
            path=(1, 2), interval=PeriodicInterval.around(8 * 3600, 1800)
        )
        e_full = CardinalityEstimator(full, "CSS-Acc").estimate(query)
        e_part = CardinalityEstimator(partitioned, "CSS-Acc").estimate(query)
        assert e_part == pytest.approx(e_full, rel=0.1)
