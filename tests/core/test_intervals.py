"""Tests for fixed and periodic time intervals."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SECONDS_PER_DAY
from repro.core import FixedInterval, PeriodicInterval, is_periodic
from repro.errors import IntervalError


class TestFixedInterval:
    def test_contains(self):
        interval = FixedInterval(10, 20)
        assert interval.contains(10)
        assert interval.contains(19)
        assert not interval.contains(20)
        assert not interval.contains(9)

    def test_size(self):
        assert FixedInterval(10, 25).size == 15

    def test_empty_rejected(self):
        with pytest.raises(IntervalError):
            FixedInterval(10, 10)
        with pytest.raises(IntervalError):
            FixedInterval(10, 5)


class TestPeriodicInterval:
    def test_contains_same_day(self):
        interval = PeriodicInterval(start_tod=8 * 3600, duration=1800)
        assert interval.contains(8 * 3600 + 100)
        assert not interval.contains(9 * 3600)

    def test_contains_every_day(self):
        interval = PeriodicInterval(start_tod=8 * 3600, duration=1800)
        for day in range(5):
            assert interval.contains(day * SECONDS_PER_DAY + 8 * 3600 + 5)

    def test_wraps_midnight(self):
        interval = PeriodicInterval(start_tod=23 * 3600 + 1800, duration=3600)
        assert interval.contains(10 * SECONDS_PER_DAY + 23 * 3600 + 1801)
        assert interval.contains(4 * SECONDS_PER_DAY + 10 * 60)
        assert not interval.contains(12 * 3600)

    def test_around_centers_window(self):
        timestamp = 3 * SECONDS_PER_DAY + 8 * 3600
        interval = PeriodicInterval.around(timestamp, 900)
        assert interval.contains(timestamp)
        assert interval.contains(timestamp - 449)
        assert interval.contains(timestamp + 449)
        assert not interval.contains(timestamp + 451)

    def test_around_bad_size(self):
        with pytest.raises(IntervalError):
            PeriodicInterval.around(0, 0)

    def test_widened_keeps_center(self):
        interval = PeriodicInterval.around(8 * 3600, 900)
        widened = interval.widened_to(1800)
        assert widened.duration == 1800
        assert widened.center_tod == interval.center_tod

    def test_widen_cannot_shrink(self):
        interval = PeriodicInterval.around(8 * 3600, 1800)
        with pytest.raises(IntervalError):
            interval.widened_to(900)

    def test_shrunk_keeps_center(self):
        interval = PeriodicInterval.around(8 * 3600, 7200)
        shrunk = interval.shrunk_to(900)
        assert shrunk.duration == 900
        assert shrunk.center_tod == interval.center_tod

    def test_shrink_cannot_grow(self):
        interval = PeriodicInterval.around(8 * 3600, 900)
        with pytest.raises(IntervalError):
            interval.shrunk_to(1800)

    def test_shift_and_enlarge(self):
        interval = PeriodicInterval(start_tod=8 * 3600, duration=900)
        adapted = interval.shifted_and_enlarged(shift=600, enlarge=300)
        assert adapted.start_tod == 8 * 3600 + 600
        assert adapted.duration == 1200

    def test_shift_never_inverts(self):
        # The literal Procedure-6 formula could produce an empty interval
        # for shift > size + enlarge; the prose semantics cannot.
        interval = PeriodicInterval(start_tod=0, duration=900)
        adapted = interval.shifted_and_enlarged(shift=100_000, enlarge=0)
        assert adapted.duration == 900

    def test_duration_clamped_to_day(self):
        interval = PeriodicInterval(start_tod=0, duration=2 * SECONDS_PER_DAY)
        assert interval.duration == SECONDS_PER_DAY
        assert interval.contains(12345)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(IntervalError):
            PeriodicInterval(start_tod=0, duration=0)

    def test_is_periodic(self):
        assert is_periodic(PeriodicInterval(0, 10))
        assert not is_periodic(FixedInterval(0, 10))


@settings(max_examples=80, deadline=None)
@given(
    st.integers(0, SECONDS_PER_DAY - 1),
    st.integers(1, SECONDS_PER_DAY),
    st.integers(0, 10 * SECONDS_PER_DAY),
)
def test_property_periodic_membership_is_daily(start, duration, t):
    interval = PeriodicInterval(start_tod=start, duration=duration)
    assert interval.contains(t) == interval.contains(t + SECONDS_PER_DAY)


@settings(max_examples=80, deadline=None)
@given(
    st.integers(0, 10 * SECONDS_PER_DAY),
    st.sampled_from([900, 1800, 2700, 3600, 5400, 7200]),
    st.sampled_from([1800, 2700, 3600, 5400, 7200]),
)
def test_property_widening_is_monotone(center, size, new_size):
    interval = PeriodicInterval.around(center, size)
    if new_size < size:
        return
    widened = interval.widened_to(new_size)
    # Every timestamp matched before is still matched after widening.
    for offset in range(-size // 2, size // 2, max(1, size // 7)):
        t = center + offset
        if interval.contains(t):
            assert widened.contains(t)
