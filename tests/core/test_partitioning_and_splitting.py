"""Tests for pi partitioning methods and the sigma splitting function.

Uses the paper's example path P = <A, C, D, E> on the Figure 1 network,
for which Section 3.2 gives the expected partitions of every method.
"""

import pytest

from repro.core import (
    FixedInterval,
    PeriodicInterval,
    StrictPathQuery,
    get_partitioner,
    longest_prefix_splitter,
    modify_subquery,
    regular_split,
)
from repro.core.partitioning import PARTITIONER_NAMES
from repro.errors import QueryError

from tests.network.test_graph import build_paper_network

# Edge ids on the paper network: A=1, B=2, C=3, D=4, E=5, F=6.
A, B, C, D, E, F = 1, 2, 3, 4, 5, 6
PATH_ACDE = (A, C, D, E)

LADDER = (900, 1800, 2700, 3600, 5400, 7200)


@pytest.fixture(scope="module")
def network():
    return build_paper_network()


def subpaths(name, path, network):
    segments = get_partitioner(name)(path, network)
    return [tuple(path[s.start : s.end]) for s in segments]


class TestPartitioners:
    """Expected partitions from paper Section 3.2."""

    def test_pi_1(self, network):
        assert subpaths("pi_1", PATH_ACDE, network) == [
            (A,), (C,), (D,), (E,),
        ]

    def test_pi_2(self, network):
        assert subpaths("pi_2", PATH_ACDE, network) == [(A, C), (D, E)]

    def test_pi_3(self, network):
        assert subpaths("pi_3", PATH_ACDE, network) == [(A, C, D), (E,)]

    def test_pi_C(self, network):
        # A motorway | C,D secondary | E primary.
        assert subpaths("pi_C", PATH_ACDE, network) == [(A,), (C, D), (E,)]

    def test_pi_Z(self, network):
        # A rural | C,D,E city.
        assert subpaths("pi_Z", PATH_ACDE, network) == [(A,), (C, D, E)]

    def test_pi_ZC(self, network):
        assert subpaths("pi_ZC", PATH_ACDE, network) == [(A,), (C, D), (E,)]

    def test_pi_N(self, network):
        assert subpaths("pi_N", PATH_ACDE, network) == [PATH_ACDE]

    def test_pi_MDM_user_flags(self, network):
        # Partition like pi_C; keep the user filter only on main roads
        # (motorway A and primary E), not on the secondary stretch.
        segments = get_partitioner("pi_MDM")(PATH_ACDE, network)
        assert [tuple(PATH_ACDE[s.start : s.end]) for s in segments] == [
            (A,), (C, D), (E,),
        ]
        assert [s.keep_user for s in segments] == [True, False, True]

    def test_partitions_cover_path_exactly(self, network):
        for name in PARTITIONER_NAMES:
            segments = get_partitioner(name)(PATH_ACDE, network)
            covered = []
            for segment in segments:
                covered.extend(range(segment.start, segment.end))
            assert covered == list(range(len(PATH_ACDE))), name

    def test_single_edge_path(self, network):
        for name in PARTITIONER_NAMES:
            assert subpaths(name, (A,), network) == [(A,)], name

    def test_unknown_partitioner(self):
        with pytest.raises(KeyError):
            get_partitioner("pi_X")


class TestModifySubquery:
    """Procedure 1 state machine."""

    def make(self, path=PATH_ACDE, size=900, user=None, beta=20, fixed=False):
        interval = (
            FixedInterval(0, 10_000)
            if fixed
            else PeriodicInterval.around(8 * 3600, size)
        )
        return StrictPathQuery(
            path=path, interval=interval, user=user, beta=beta
        )

    def test_widen_first(self):
        result = modify_subquery(self.make(size=900), LADDER, t_max=10_000)
        assert len(result) == 1
        assert result[0].interval.duration == 1800
        assert result[0].path == PATH_ACDE

    def test_widen_steps_through_ladder(self):
        query = self.make(size=900)
        sizes = []
        for _ in range(5):
            (query,) = modify_subquery(query, LADDER, t_max=10_000)
            sizes.append(query.interval.duration)
        assert sizes == [1800, 2700, 3600, 5400, 7200]

    def test_widen_handles_off_ladder_sizes(self):
        # Shift-and-enlarge can leave the duration between ladder rungs.
        query = self.make(size=2000)
        (widened,) = modify_subquery(query, LADDER, t_max=10_000)
        assert widened.interval.duration == 2700

    def test_split_after_ladder_exhausted(self):
        query = self.make(size=7200)
        result = modify_subquery(query, LADDER, t_max=10_000)
        assert len(result) == 2
        assert result[0].path == (A, C)
        assert result[1].path == (D, E)
        # Children restart at alpha_min.
        assert result[0].interval.duration == 900
        assert result[1].interval.duration == 900

    def test_split_fixed_interval_goes_straight_to_split(self):
        query = self.make(fixed=True)
        result = modify_subquery(query, LADDER, t_max=10_000)
        assert len(result) == 2
        assert result[0].interval == query.interval  # unchanged

    def test_single_segment_drops_user(self):
        query = self.make(path=(A,), size=7200, user=7)
        result = modify_subquery(query, LADDER, t_max=10_000)
        assert len(result) == 1
        assert result[0].user is None
        assert result[0].path == (A,)
        assert result[0].beta == 20  # beta kept at this stage

    def test_final_fallback_drops_everything(self):
        query = self.make(path=(A,), size=7200, user=None)
        result = modify_subquery(query, LADDER, t_max=10_000)
        assert len(result) == 1
        final = result[0]
        assert final.beta is None
        assert final.user is None
        assert final.interval == FixedInterval(0, 10_000)

    def test_ladder_must_be_sorted(self):
        with pytest.raises(QueryError):
            modify_subquery(self.make(), (900, 600), t_max=10_000)
        with pytest.raises(QueryError):
            modify_subquery(self.make(), (), t_max=10_000)

    def test_full_relaxation_chain_terminates(self):
        query = self.make(user=3, beta=50)
        queue = [query]
        steps = 0
        done = []
        while queue and steps < 200:
            steps += 1
            current = queue.pop(0)
            if (
                current.beta is None
                and isinstance(current.interval, FixedInterval)
            ):
                done.append(current)  # terminal form
                continue
            queue = modify_subquery(current, LADDER, t_max=10_000) + queue
        assert not queue, "relaxation must terminate"
        # Terminal sub-queries cover the path exactly, in order.
        covered = [e for q in done for e in q.path]
        assert covered == list(PATH_ACDE)


class TestSplitPoints:
    def test_regular_split_halves(self):
        query = StrictPathQuery(
            path=(1, 2, 3, 4, 5), interval=FixedInterval(0, 10), beta=2
        )
        assert regular_split(query, query.interval) == 2

    def test_regular_split_two(self):
        query = StrictPathQuery(
            path=(1, 2), interval=FixedInterval(0, 10), beta=2
        )
        assert regular_split(query, query.interval) == 1

    def test_longest_prefix_uses_counter(self):
        # Counter: prefixes up to length 3 have 5 matches, longer have 1.
        def counter(path, interval, user, limit):
            return 5 if len(path) <= 3 else 1

        split = longest_prefix_splitter(counter)
        query = StrictPathQuery(
            path=(1, 2, 3, 4, 5, 6), interval=FixedInterval(0, 10), beta=5
        )
        assert split(query, query.interval) == 3

    def test_longest_prefix_minimum_one(self):
        def counter(path, interval, user, limit):
            return 0

        split = longest_prefix_splitter(counter)
        query = StrictPathQuery(
            path=(1, 2, 3, 4), interval=FixedInterval(0, 10), beta=5
        )
        assert split(query, query.interval) == 1

    def test_longest_prefix_never_full_path(self):
        def counter(path, interval, user, limit):
            return 100

        split = longest_prefix_splitter(counter)
        query = StrictPathQuery(
            path=(1, 2, 3, 4), interval=FixedInterval(0, 10), beta=5
        )
        assert split(query, query.interval) == 3  # l - 1 at most
