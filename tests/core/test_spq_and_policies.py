"""Tests for the StrictPathQuery type and beta policies."""

import pytest

from repro.core import (
    FixedInterval,
    PeriodicInterval,
    StrictPathQuery,
    uniform_beta_policy,
    zone_beta_policy,
)
from repro.errors import EmptyPathError

from tests.network.test_graph import build_paper_network


class TestStrictPathQuery:
    def make(self, **kwargs):
        defaults = dict(
            path=(1, 2, 3), interval=FixedInterval(0, 100), beta=5
        )
        defaults.update(kwargs)
        return StrictPathQuery(**defaults)

    def test_empty_path_rejected(self):
        with pytest.raises(EmptyPathError):
            StrictPathQuery(path=(), interval=FixedInterval(0, 1))

    def test_bad_beta_rejected(self):
        with pytest.raises(EmptyPathError):
            self.make(beta=0)
        with pytest.raises(EmptyPathError):
            self.make(beta=-3)

    def test_beta_none_allowed(self):
        assert self.make(beta=None).beta is None

    def test_path_coerced_to_int_tuple(self):
        import numpy as np

        query = StrictPathQuery(
            path=np.array([1, 2, 3]), interval=FixedInterval(0, 1)
        )
        assert query.path == (1, 2, 3)
        assert all(isinstance(e, int) for e in query.path)

    def test_length(self):
        assert self.make().length == 3

    def test_with_interval(self):
        query = self.make()
        periodic = PeriodicInterval.around(0, 900)
        modified = query.with_interval(periodic)
        assert modified.interval == periodic
        assert query.interval == FixedInterval(0, 100)  # immutable

    def test_with_path(self):
        modified = self.make().with_path((9, 8))
        assert modified.path == (9, 8)

    def test_without_user(self):
        query = self.make(user=7)
        assert query.without_user().user is None
        assert query.user == 7

    def test_without_beta(self):
        assert self.make().without_beta().beta is None

    def test_marked_shifted(self):
        query = self.make()
        assert not query.shift_applied
        assert query.marked_shifted().shift_applied

    def test_hashable_and_frozen(self):
        query = self.make()
        assert hash(query) == hash(self.make())
        with pytest.raises(Exception):
            query.beta = 99  # frozen dataclass


class TestBetaPolicies:
    def setup_method(self):
        self.network = build_paper_network()

    def test_uniform_policy_identity(self):
        policy = uniform_beta_policy()
        assert policy((1, 2), 20) == 20
        assert policy((1,), None) is None

    def test_zone_policy_relaxes_rural(self):
        policy = zone_beta_policy(self.network, rural_factor=0.5)
        # Edge 1 (A) is rural; edge 2 (B) is city.
        assert policy((1,), 20) == 10
        assert policy((2,), 20) == 20

    def test_zone_policy_minimum(self):
        policy = zone_beta_policy(
            self.network, rural_factor=0.1, minimum=3
        )
        assert policy((1,), 20) == 3

    def test_zone_policy_none_beta_passthrough(self):
        policy = zone_beta_policy(self.network)
        assert policy((1,), None) is None

    def test_zone_policy_validation(self):
        with pytest.raises(ValueError):
            zone_beta_policy(self.network, rural_factor=0.0)
        with pytest.raises(ValueError):
            zone_beta_policy(self.network, rural_factor=1.5)
        with pytest.raises(ValueError):
            zone_beta_policy(self.network, minimum=0)

    def test_engine_applies_policy(self):
        # Engine-level integration on the tiny dataset.
        from repro import (
            EngineConfig,
            PeriodicInterval,
            QueryEngine,
            SNTIndex,
            StrictPathQuery,
            TripRequest,
            generate_dataset,
        )
        from repro.core import zone_beta_policy as make_policy
        from repro.network.zones import ZoneType

        dataset = generate_dataset("tiny", seed=0)
        index = SNTIndex.build(
            dataset.trajectories, dataset.network.alphabet_size
        )
        trip = next(
            tr
            for tr in dataset.trajectories
            if len(tr) >= 10
            and any(
                dataset.network.edge(e).zone is ZoneType.RURAL
                for e in tr.path
            )
        )
        engine = QueryEngine(
            index,
            dataset.network,
            EngineConfig(
                partitioner="pi_Z",
                beta_policy=make_policy(dataset.network, rural_factor=0.25),
            ),
        )
        result = engine.query(
            TripRequest(
                path=trip.path,
                interval=PeriodicInterval.around(trip.start_time, 900),
                beta=20,
                exclude_ids=(trip.traj_id,),
            )
        )
        assert result.histogram.total > 0
