"""Tests for the rank-support bitvector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fmindex.bitvector import RankBitvector


def naive_rank1(bits, i):
    return sum(1 for b in bits[:i] if b)


def test_empty():
    bv = RankBitvector([])
    assert len(bv) == 0
    assert bv.rank1(0) == 0
    assert bv.n_ones == 0


def test_single_bits():
    assert RankBitvector([True]).rank1(1) == 1
    assert RankBitvector([False]).rank1(1) == 0


def test_small_pattern():
    bits = [1, 0, 1, 1, 0, 0, 1, 0, 1]
    bv = RankBitvector(bits)
    for i in range(len(bits) + 1):
        assert bv.rank1(i) == naive_rank1(bits, i)
        assert bv.rank0(i) == i - naive_rank1(bits, i)


def test_getitem():
    bits = [1, 0, 1, 1, 0]
    bv = RankBitvector(bits)
    assert [bv[i] for i in range(5)] == [True, False, True, True, False]


def test_getitem_out_of_range():
    bv = RankBitvector([1, 0])
    with pytest.raises(IndexError):
        bv[2]
    with pytest.raises(IndexError):
        bv[-1]


def test_rank_out_of_range():
    bv = RankBitvector([1, 0])
    with pytest.raises(IndexError):
        bv.rank1(3)


def test_block_boundaries():
    # Exercise ranks across byte and block boundaries.
    bits = ([True] * 100 + [False] * 100) * 7
    bv = RankBitvector(bits)
    for i in [0, 1, 7, 8, 9, 63, 64, 65, 100, 199, 200, 512, 513, 1399, 1400]:
        assert bv.rank1(i) == naive_rank1(bits, i)


def test_n_ones():
    bits = [True, False, True] * 50
    assert RankBitvector(bits).n_ones == 100


def test_rank1_bulk_matches_scalar():
    rng = np.random.default_rng(7)
    bits = rng.random(1000) < 0.3
    bv = RankBitvector(bits)
    positions = np.array([0, 1, 8, 9, 511, 512, 513, 999, 1000])
    expected = [bv.rank1(int(p)) for p in positions]
    assert bv.rank1_bulk(positions).tolist() == expected


def test_rank1_bulk_out_of_range():
    bv = RankBitvector([True] * 4)
    with pytest.raises(IndexError):
        bv.rank1_bulk(np.array([5]))


def test_size_in_bytes_reasonable():
    bv = RankBitvector([True] * 8000)
    # 1000 packed bytes + block ranks; far below a byte per bit.
    assert 1000 <= bv.size_in_bytes() < 1400


@settings(max_examples=100, deadline=None)
@given(st.lists(st.booleans(), max_size=300), st.data())
def test_property_rank_matches_naive(bits, data):
    bv = RankBitvector(bits)
    i = data.draw(st.integers(min_value=0, max_value=len(bits)))
    assert bv.rank1(i) == naive_rank1(bits, i)
    assert bv.rank0(i) + bv.rank1(i) == i


@settings(max_examples=50, deadline=None)
@given(st.lists(st.booleans(), min_size=1, max_size=300))
def test_property_access_matches_input(bits):
    bv = RankBitvector(bits)
    assert [bv[i] for i in range(len(bits))] == [bool(b) for b in bits]
