"""Property tests: bulk rank primitives must match their scalar oracles.

The vectorized paths (``RankBitvector.rank1_bulk``,
``WaveletTree.rank_pair_bulk``, ``FMIndex.isa_ranges``) exist purely for
throughput — every answer they produce must be bit-identical to the
scalar code they shadow.  Hypothesis drives random bit patterns, texts,
and position sets through both paths, with explicit coverage for the
edge cases the scalar code handles implicitly: empty bitvectors, empty
position arrays, positions on word/block boundaries, and symbols absent
from the alphabet.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fmindex import FMIndex
from repro.fmindex.bitvector import WORD_BITS, WORDS_PER_BLOCK, RankBitvector
from repro.fmindex.wavelet_tree import WaveletTree

BLOCK_BITS = WORD_BITS * WORDS_PER_BLOCK


# ---------------------------------------------------------------------------
# RankBitvector.rank1_bulk / rank0_bulk
# ---------------------------------------------------------------------------


@given(
    bits=st.lists(st.booleans(), max_size=3 * BLOCK_BITS),
    data=st.data(),
)
@settings(max_examples=150, deadline=None)
def test_rank1_bulk_matches_scalar(bits, data):
    bv = RankBitvector(bits)
    positions = data.draw(
        st.lists(st.integers(0, len(bits)), max_size=60).map(
            lambda xs: np.asarray(xs, dtype=np.int64)
        )
    )
    got1 = bv.rank1_bulk(positions)
    got0 = bv.rank0_bulk(positions)
    for pos, r1, r0 in zip(positions.tolist(), got1.tolist(), got0.tolist()):
        assert r1 == bv.rank1(pos)
        assert r0 == bv.rank0(pos)
    assert got1.dtype == np.int64
    assert got0.dtype == np.int64


@given(n_blocks=st.integers(0, 3), data=st.data())
@settings(max_examples=60, deadline=None)
def test_rank1_bulk_on_boundary_positions(n_blocks, data):
    """Word and block boundaries exercise the tail-shift and gather mask."""
    n = n_blocks * BLOCK_BITS + data.draw(st.integers(0, BLOCK_BITS))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
    bits = rng.integers(0, 2, size=n).astype(bool)
    bv = RankBitvector(bits)
    boundaries = sorted(
        {
            min(p, n)
            for base in range(0, n + 1, WORD_BITS)
            for p in (base - 1, base, base + 1)
            if 0 <= p
        }
        | {0, n}
    )
    positions = np.asarray(boundaries, dtype=np.int64)
    expected = np.concatenate(([0], np.cumsum(bits)))[positions] if n else positions * 0
    assert bv.rank1_bulk(positions).tolist() == expected.tolist()


def test_rank_bulk_empty_bitvector():
    bv = RankBitvector([])
    assert bv.rank1_bulk(np.empty(0, dtype=np.int64)).tolist() == []
    assert bv.rank1_bulk(np.zeros(4, dtype=np.int64)).tolist() == [0, 0, 0, 0]
    assert bv.rank0_bulk(np.zeros(2, dtype=np.int64)).tolist() == [0, 0]


def test_rank_bulk_empty_positions_short_circuits_dtype_check():
    bv = RankBitvector([1, 0, 1])
    # An empty float array has nothing to truncate; it is accepted.
    assert bv.rank1_bulk(np.empty(0, dtype=np.float64)).size == 0


def test_rank_bulk_rejects_bad_inputs():
    bv = RankBitvector([1, 0, 1, 1])
    with pytest.raises(TypeError):
        bv.rank1_bulk(np.int64(2))  # 0-d
    with pytest.raises(TypeError):
        bv.rank1_bulk(np.array([[1, 2]]))  # 2-d
    with pytest.raises(TypeError, match="truncated"):
        bv.rank1_bulk(np.array([1.5]))
    with pytest.raises(IndexError):
        bv.rank1_bulk(np.array([5]))
    with pytest.raises(IndexError):
        bv.rank1_bulk(np.array([-1]))


# ---------------------------------------------------------------------------
# WaveletTree.rank_pair_bulk
# ---------------------------------------------------------------------------

ABSENT_SYMBOL = 9_999


@given(
    text=st.lists(st.integers(0, 6), max_size=200),
    data=st.data(),
)
@settings(max_examples=120, deadline=None)
def test_rank_pair_bulk_matches_scalar(text, data):
    wt = WaveletTree(text)
    n_pairs = data.draw(st.integers(0, 50))
    symbol = data.draw(
        st.sampled_from(sorted(set(text)) + [ABSENT_SYMBOL]) if text
        else st.just(ABSENT_SYMBOL)
    )
    lo = data.draw(
        st.lists(
            st.integers(0, len(text)), min_size=n_pairs, max_size=n_pairs
        )
    )
    hi = [data.draw(st.integers(value, len(text))) for value in lo]
    i_arr = np.asarray(lo, dtype=np.int64)
    j_arr = np.asarray(hi, dtype=np.int64)
    got_i, got_j = wt.rank_pair_bulk(symbol, i_arr, j_arr)
    for k in range(n_pairs):
        assert (got_i[k], got_j[k]) == wt.rank_pair(symbol, lo[k], hi[k])


def test_rank_pair_bulk_empty_inputs():
    wt = WaveletTree([0, 1, 2, 1])
    empty = np.empty(0, dtype=np.int64)
    got_i, got_j = wt.rank_pair_bulk(1, empty, empty)
    assert got_i.size == 0 and got_j.size == 0


def test_rank_pair_bulk_length_mismatch_rejected():
    wt = WaveletTree([0, 1, 2, 1])
    with pytest.raises(TypeError):
        wt.rank_pair_bulk(1, np.array([0, 1]), np.array([2]))


# ---------------------------------------------------------------------------
# FMIndex.isa_ranges (batched backward search)
# ---------------------------------------------------------------------------


@given(
    text=st.lists(st.integers(1, 5), min_size=1, max_size=120),
    data=st.data(),
)
@settings(max_examples=80, deadline=None)
def test_isa_ranges_matches_scalar(text, data):
    fm = FMIndex(text)
    paths = data.draw(
        st.lists(
            st.lists(
                st.integers(0, 7),  # includes 0 (terminator) and absent 6,7
                min_size=1,
                max_size=6,
            ),
            max_size=40,
        )
    )
    # Mix in real substrings so matches actually occur.
    for _ in range(data.draw(st.integers(0, 10))):
        start = data.draw(st.integers(0, len(text) - 1))
        end = data.draw(st.integers(start + 1, len(text)))
        paths.append(list(text[start:end]))
    batched = fm.isa_ranges(paths)
    assert batched == [fm.isa_range(path) for path in paths]


def test_isa_ranges_empty_batch_and_empty_path():
    fm = FMIndex([1, 2, 1])
    assert fm.isa_ranges([]) == []
    with pytest.raises(ValueError):
        fm.isa_ranges([[1], []])


# ---------------------------------------------------------------------------
# WaveletTree.rank_pairs_frontier (levelwise multi-symbol descent)
# ---------------------------------------------------------------------------


@given(
    text=st.lists(st.integers(1, 9), min_size=1, max_size=200),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_rank_pairs_frontier_matches_scalar(text, data):
    """The levelwise descent equals per-pair ``rank_pair`` exactly —
    including absent symbols (``(0, 0)``) and enough pairs to keep the
    vectorised path live past the ``_FRONTIER_MIN`` scalar tail."""
    tree = WaveletTree(text)
    n = len(tree)
    pairs = data.draw(st.integers(1, 150))
    symbols = data.draw(
        st.lists(
            st.integers(0, 11),  # includes symbols absent from the text
            min_size=pairs,
            max_size=pairs,
        )
    )
    i_pos = np.asarray(
        data.draw(
            st.lists(
                st.integers(0, n), min_size=pairs, max_size=pairs
            )
        ),
        dtype=np.int64,
    )
    j_pos = np.asarray(
        data.draw(
            st.lists(
                st.integers(0, n), min_size=pairs, max_size=pairs
            )
        ),
        dtype=np.int64,
    )
    out_i, out_j = tree.rank_pairs_frontier(symbols, i_pos, j_pos)
    for k, symbol in enumerate(symbols):
        expected = tree.rank_pair(symbol, int(i_pos[k]), int(j_pos[k]))
        assert (int(out_i[k]), int(out_j[k])) == expected


def test_isa_ranges_large_batch_exercises_frontier():
    """A service-scale batch (well above ``_BULK_MIN_PAIRS``) must stay
    bit-identical through the levelwise frontier rounds."""
    rng = np.random.default_rng(7)
    text = np.where(
        rng.random(5000) < 0.02, 0, rng.integers(1, 40, size=5000)
    )
    fm = FMIndex(text)
    paths = []
    for _ in range(300):
        start = int(rng.integers(0, len(text) - 1))
        length = int(rng.integers(1, 7))
        paths.append([int(s) for s in text[start : start + length]])
    assert fm.isa_ranges(paths) == [fm.isa_range(p) for p in paths]


def test_wavelet_flat_payload_mismatch_rejected():
    """`from_arrays` with a flat payload that disagrees with the node
    set must fail loudly, not mis-slice."""
    tree = WaveletTree([1, 2, 3, 1, 2, 1])
    nodes = tree.nodes
    with pytest.raises(ValueError, match="flat node payload"):
        WaveletTree.from_arrays(
            len(tree),
            tree.codes,
            nodes,
            flat_words=np.zeros(1, dtype=np.uint64),
            flat_blocks=np.zeros(1, dtype=np.int64),
        )
