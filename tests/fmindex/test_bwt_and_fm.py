"""Tests for the BWT, symbol counts, and the full FM-index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fmindex import (
    FMIndex,
    bwt_from_suffix_array,
    suffix_array,
    symbol_counts,
)

from tests.paper_vectors import (
    EXPECTED_BWT,
    ISA_RANGE_A,
    ISA_RANGE_AB,
    TRAJECTORY_STRING,
)


def naive_count(text, pattern):
    n, m = len(text), len(pattern)
    return sum(1 for i in range(n - m + 1) if list(text[i : i + m]) == list(pattern))


class TestBWT:
    def test_paper_bwt(self):
        sa = suffix_array(TRAJECTORY_STRING)
        bwt = bwt_from_suffix_array(TRAJECTORY_STRING, sa)
        assert bwt.tolist() == EXPECTED_BWT

    def test_empty(self):
        assert bwt_from_suffix_array([], np.empty(0, np.int64)).size == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            bwt_from_suffix_array([1, 2], np.array([0]))

    def test_bwt_is_permutation_of_text(self):
        sa = suffix_array(TRAJECTORY_STRING)
        bwt = bwt_from_suffix_array(TRAJECTORY_STRING, sa)
        assert sorted(bwt.tolist()) == sorted(TRAJECTORY_STRING)


class TestSymbolCounts:
    def test_paper_counts(self):
        counts = symbol_counts(TRAJECTORY_STRING, 7)
        # C['B'] = 8: four $ and four A precede B lexicographically.
        assert counts[2] == 8
        assert counts[0] == 0
        assert counts[-1] == len(TRAJECTORY_STRING)

    def test_occurrences_via_adjacent_difference(self):
        counts = symbol_counts(TRAJECTORY_STRING, 7)
        occurrences = np.diff(counts)
        # $:4 A:4 B:3 C:1 D:1 E:3 F:1
        assert occurrences.tolist() == [4, 4, 3, 1, 1, 3, 1]

    def test_symbol_out_of_range(self):
        with pytest.raises(ValueError):
            symbol_counts([0, 9], alphabet_size=5)


class TestFMIndex:
    @pytest.fixture(scope="class")
    def fm(self):
        return FMIndex(TRAJECTORY_STRING, alphabet_size=7)

    def test_paper_isa_range_single_segment(self, fm):
        assert fm.isa_range([1]) == ISA_RANGE_A

    def test_paper_isa_range_two_segments(self, fm):
        assert fm.isa_range([1, 2]) == ISA_RANGE_AB

    def test_full_paths(self, fm):
        assert fm.count([1, 2, 5]) == 2  # <A,B,E>: tr0 and tr3
        assert fm.count([1, 3, 4, 5]) == 1  # <A,C,D,E>: tr1
        assert fm.count([1, 2, 6]) == 1  # <A,B,F>: tr2

    def test_missing_path(self, fm):
        assert fm.isa_range([5, 1]) == (0, 0)  # no E -> A transition
        assert not fm.contains([5, 1])

    def test_unknown_symbol(self, fm):
        assert fm.isa_range([42]) == (0, 0)

    def test_empty_path_rejected(self, fm):
        with pytest.raises(ValueError):
            fm.isa_range([])

    def test_isa_attribute_is_inverse_permutation(self, fm):
        isa = fm.isa
        assert sorted(isa.tolist()) == list(range(len(TRAJECTORY_STRING)))

    def test_isa_of_traversals_lies_in_path_range(self, fm):
        # Every A-traversal position (0, 4, 9, 13) has ISA within R(<A>).
        st_, ed = fm.isa_range([1])
        for position in (0, 4, 9, 13):
            assert st_ <= fm.isa[position] < ed

    def test_negative_symbols_rejected(self):
        with pytest.raises(ValueError):
            FMIndex([1, -1])

    def test_empty_text(self):
        fm = FMIndex([], alphabet_size=4)
        assert fm.isa_range([2]) == (0, 0)

    def test_size_in_bytes_positive(self, fm):
        assert fm.size_in_bytes() > 0


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=5), min_size=0, max_size=80),
    st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=4),
)
def test_property_fm_count_matches_naive(body, pattern):
    # Trajectory-string contract: terminated text, terminator-free patterns.
    text = body + [0]
    fm = FMIndex(text, alphabet_size=6)
    assert fm.count(pattern) == naive_count(text, pattern)


def test_cyclic_artifact_without_terminator_contract():
    # BWT indexes are cyclic: without the trajectory-string contract a
    # pattern may wrap around the end of the text.  Documented behaviour.
    fm = FMIndex([0], alphabet_size=1)
    assert fm.count([0, 0]) == 1  # cyclic wrap match


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=60))
def test_property_single_symbol_count(text):
    fm = FMIndex(text, alphabet_size=4)
    for symbol in range(4):
        assert fm.count([symbol]) == text.count(symbol)
