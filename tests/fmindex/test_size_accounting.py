"""Regression tests: size_in_bytes() must equal the resident arrays.

The pre-refactor RankBitvector kept a hidden per-byte int64 prefix
table (~8 B of directory per byte of payload!) that size_in_bytes()
never reported, so the Figure 10 memory accounting understated actual
memory by an order of magnitude.  These tests pin the contract: the
reported size of every succinct structure equals the sum of its
resident numpy arrays' nbytes, plus only the *documented* code-table
constant of the wavelet tree (9 B per alphabet symbol).
"""

import numpy as np

from repro.fmindex import FMIndex
from repro.fmindex.bitvector import RankBitvector
from repro.fmindex.wavelet_tree import WaveletTree


def resident_bitvector_bytes(bv: RankBitvector) -> int:
    return int(bv.words.nbytes + bv.block_ranks.nbytes)


def test_bitvector_reports_exact_resident_bytes():
    rng = np.random.default_rng(7)
    for n in (0, 1, 63, 64, 65, 511, 512, 513, 10_000):
        bv = RankBitvector(rng.integers(0, 2, size=n).astype(bool))
        assert bv.size_in_bytes() == resident_bitvector_bytes(bv)


def test_bitvector_directory_overhead_is_one_eighth():
    """The block directory is 12.5% of the payload (one int64 per 512
    bits), not the old 800% per-byte prefix table."""
    n = 1 << 16
    bv = RankBitvector(np.ones(n, dtype=bool))
    payload = n // 8
    directory = bv.size_in_bytes() - payload
    # one absolute rank per 8 words + the total-ones sentinel
    assert directory == 8 * (n // 512 + 1)


def test_wavelet_tree_reports_nodes_plus_code_table():
    rng = np.random.default_rng(11)
    wt = WaveletTree(rng.integers(0, 9, size=5_000).tolist())
    resident = sum(
        resident_bitvector_bytes(bits) for bits in wt.nodes.values()
    )
    code_table = 9 * len(wt.codes)
    assert wt.size_in_bytes() == resident + code_table


def test_fm_index_reports_wavelet_plus_counts():
    rng = np.random.default_rng(13)
    fm = FMIndex(rng.integers(1, 6, size=2_000).tolist())
    assert fm.size_in_bytes() == fm.bwt.size_in_bytes() + fm.counts.nbytes
