"""Tests for suffix-array construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fmindex.suffix_array import (
    inverse_suffix_array,
    naive_suffix_array,
    suffix_array,
)

from tests.paper_vectors import TRAJECTORY_STRING


def test_empty_string():
    assert suffix_array([]).size == 0


def test_single_symbol():
    assert suffix_array([5]).tolist() == [0]


def test_two_symbols_sorted():
    assert suffix_array([2, 1]).tolist() == [1, 0]
    assert suffix_array([1, 2]).tolist() == [0, 1]


def test_repeated_symbol_prefers_shorter_suffix():
    # aaa: suffixes "a" < "aa" < "aaa".
    assert suffix_array([1, 1, 1]).tolist() == [2, 1, 0]


def test_banana_like():
    # "banana" with b=2, a=1, n=3 -> suffixes sorted: a, ana, anana, banana,
    # na, nana -> SA = [5, 3, 1, 0, 4, 2].
    text = [2, 1, 3, 1, 3, 1]
    assert suffix_array(text).tolist() == [5, 3, 1, 0, 4, 2]


def test_matches_naive_on_paper_string():
    expected = naive_suffix_array(TRAJECTORY_STRING)
    assert suffix_array(TRAJECTORY_STRING).tolist() == expected.tolist()


def test_paper_string_dollar_block_first():
    # The four $ suffixes occupy SA[0..4); the four A suffixes SA[4..8).
    sa = suffix_array(TRAJECTORY_STRING)
    text = list(TRAJECTORY_STRING)
    first_symbols = [text[i] for i in sa]
    assert first_symbols[:4] == [0, 0, 0, 0]
    assert first_symbols[4:8] == [1, 1, 1, 1]


def test_rejects_negative_symbols():
    with pytest.raises(ValueError):
        suffix_array([1, -2, 3])


def test_inverse_suffix_array_roundtrip():
    sa = suffix_array(TRAJECTORY_STRING)
    isa = inverse_suffix_array(sa)
    assert np.array_equal(sa[isa], np.arange(sa.size))
    assert np.array_equal(isa[sa], np.arange(sa.size))


def test_suffix_array_is_permutation():
    sa = suffix_array([3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5])
    assert sorted(sa.tolist()) == list(range(11))


@settings(max_examples=150, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=6), max_size=60))
def test_property_matches_naive(text):
    assert suffix_array(text).tolist() == naive_suffix_array(text).tolist()


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=80))
def test_property_sorted_order(text):
    sa = suffix_array(text)
    suffixes = [text[i:] for i in sa]
    assert suffixes == sorted(suffixes)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=200)
)
def test_property_large_alphabet(text):
    sa = suffix_array(text)
    suffixes = [text[i:] for i in sa]
    assert suffixes == sorted(suffixes)
