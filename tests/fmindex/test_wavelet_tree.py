"""Tests for the Huffman-shaped wavelet tree."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.fmindex.huffman import huffman_codes
from repro.fmindex.wavelet_tree import WaveletTree

from tests.paper_vectors import EXPECTED_BWT


def naive_rank(text, symbol, i):
    return sum(1 for s in text[:i] if s == symbol)


def test_empty():
    wt = WaveletTree([])
    assert len(wt) == 0
    assert wt.rank(3, 0) == 0


def test_single_symbol_alphabet():
    wt = WaveletTree([4, 4, 4, 4])
    assert wt.rank(4, 0) == 0
    assert wt.rank(4, 3) == 3
    assert wt.rank(5, 4) == 0
    assert wt.access(2) == 4


def test_rank_on_paper_bwt():
    wt = WaveletTree(EXPECTED_BWT)
    # Procedure 2 trace for path <A, B>: rank_A(Tbwt, 8) = 0 and
    # rank_A(Tbwt, 11) = 3 (paper Section 4.1.1).
    assert wt.rank(1, 8) == 0
    assert wt.rank(1, 11) == 3


def test_rank_all_positions_paper_bwt():
    wt = WaveletTree(EXPECTED_BWT)
    for symbol in range(7):
        for i in range(len(EXPECTED_BWT) + 1):
            assert wt.rank(symbol, i) == naive_rank(EXPECTED_BWT, symbol, i)


def test_access_reconstructs_text():
    wt = WaveletTree(EXPECTED_BWT)
    assert [wt.access(i) for i in range(len(EXPECTED_BWT))] == EXPECTED_BWT


def test_rank_unknown_symbol_is_zero():
    wt = WaveletTree([1, 2, 3])
    assert wt.rank(99, 3) == 0


def test_rank_out_of_range():
    wt = WaveletTree([1, 2, 3])
    with pytest.raises(IndexError):
        wt.rank(1, 4)


def test_access_out_of_range():
    wt = WaveletTree([1, 2, 3])
    with pytest.raises(IndexError):
        wt.access(3)


def test_rank_pair_matches_individual():
    wt = WaveletTree(EXPECTED_BWT)
    for symbol in range(7):
        assert wt.rank_pair(symbol, 3, 11) == (
            wt.rank(symbol, 3),
            wt.rank(symbol, 11),
        )


def test_huffman_shape_gives_short_codes_to_frequent_symbols():
    text = [1] * 100 + [2] * 10 + [3] * 5 + [4]
    wt = WaveletTree(text)
    codes = wt.codes
    assert len(codes[1]) <= len(codes[2]) <= len(codes[3])
    assert len(codes[1]) <= len(codes[4])


def test_huffman_codes_prefix_free():
    codes = huffman_codes({1: 7, 2: 1, 3: 1, 4: 4, 5: 9})
    items = list(codes.values())
    for i, a in enumerate(items):
        for j, b in enumerate(items):
            if i != j:
                assert a[: len(b)] != b, "codes must be prefix-free"


def test_huffman_codes_empty_and_single():
    assert huffman_codes({}) == {}
    assert huffman_codes({7: 3}) == {7: (0,)}
    assert huffman_codes({7: 0}) == {}


def test_size_in_bytes_entropy_sensitive():
    skewed = WaveletTree([1] * 1000 + [2] * 10)
    uniform = WaveletTree(list(range(10)) * 101)
    assert skewed.size_in_bytes() < uniform.size_in_bytes()


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=12), max_size=120), st.data())
def test_property_rank_matches_naive(text, data):
    wt = WaveletTree(text)
    symbol = data.draw(st.integers(min_value=0, max_value=12))
    i = data.draw(st.integers(min_value=0, max_value=len(text)))
    assert wt.rank(symbol, i) == naive_rank(text, symbol, i)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=100))
def test_property_access_roundtrip(text):
    wt = WaveletTree(text)
    assert [wt.access(i) for i in range(len(text))] == text


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=8), max_size=100))
def test_property_total_rank_is_count(text):
    wt = WaveletTree(text)
    counts = Counter(text)
    for symbol, count in counts.items():
        assert wt.rank(symbol, len(text)) == count
