"""Property-based tests for histogram convolution (ISSUE 1 satellite).

Convolution is the algebra the whole pipeline rests on (paper Section
2.3: ``H = H1 * H2 * ... * Hk``), and the cached fast paths reuse
histogram objects across trips — so the algebraic invariants must hold
for arbitrary inputs, not just the worked example:

* unit mass is preserved (probability histograms stay probability
  histograms);
* support bounds add: ``(H1*H2)^min = H1^min + H2^min`` and likewise for
  ``max``;
* convolution is commutative and associative within float tolerance;
* ``QueryEngine._convolve`` handles the empty-outcomes edge case.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Histogram
from repro.core.engine import QueryEngine

BUCKET_WIDTH = 10.0


@st.composite
def histograms(draw, min_buckets=1, max_buckets=12):
    """Non-empty count histograms with a shared bucket width."""
    offset = draw(st.integers(min_value=0, max_value=50))
    n = draw(st.integers(min_value=min_buckets, max_value=max_buckets))
    counts = draw(
        st.lists(
            st.integers(min_value=0, max_value=40),
            min_size=n,
            max_size=n,
        ).filter(lambda values: sum(values) > 0)
    )
    return Histogram(BUCKET_WIDTH, offset, np.asarray(counts, dtype=float))


def assert_histograms_close(left: Histogram, right: Histogram) -> None:
    lo = min(left.offset, right.offset)
    hi = max(left.offset + left.counts.size, right.offset + right.counts.size)

    def dense(histogram: Histogram) -> np.ndarray:
        out = np.zeros(hi - lo)
        start = histogram.offset - lo
        out[start : start + histogram.counts.size] = histogram.counts
        return out

    np.testing.assert_allclose(dense(left), dense(right), rtol=1e-9, atol=1e-9)


@given(h1=histograms(), h2=histograms())
@settings(max_examples=120, deadline=None)
def test_unit_mass_is_preserved(h1, h2):
    result = h1.scaled_to_unit_mass() * h2.scaled_to_unit_mass()
    assert result.total == pytest.approx(1.0, rel=1e-9)


@given(h1=histograms(), h2=histograms())
@settings(max_examples=120, deadline=None)
def test_support_bounds_add(h1, h2):
    result = h1 * h2
    assert result.min_value == pytest.approx(h1.min_value + h2.min_value)
    # Bucket maxima are upper *edges*: [a, a+h) + [b, b+h) sums of draws
    # live in [a+b, a+b+2h), one bucket width below the naive edge sum.
    assert result.max_value == pytest.approx(
        h1.max_value + h2.max_value - BUCKET_WIDTH
    )


@given(h1=histograms(), h2=histograms())
@settings(max_examples=120, deadline=None)
def test_convolution_is_commutative(h1, h2):
    assert_histograms_close(h1 * h2, h2 * h1)


@given(h1=histograms(), h2=histograms(), h3=histograms())
@settings(max_examples=80, deadline=None)
def test_convolution_is_associative(h1, h2, h3):
    assert_histograms_close((h1 * h2) * h3, h1 * (h2 * h3))


@given(h1=histograms(), h2=histograms())
@settings(max_examples=80, deadline=None)
def test_total_mass_multiplies(h1, h2):
    # Counts convolve to all pairs of draws: |H1| * |H2| observations.
    assert (h1 * h2).total == pytest.approx(h1.total * h2.total, rel=1e-9)


@given(h=histograms())
@settings(max_examples=60, deadline=None)
def test_identity_element(h):
    identity = Histogram(BUCKET_WIDTH, 0, [1.0])
    assert_histograms_close(h * identity, h)
    assert_histograms_close(identity * h, h)


@given(h=histograms())
@settings(max_examples=60, deadline=None)
def test_convolving_with_empty_yields_empty(h):
    empty = Histogram(BUCKET_WIDTH, 0, np.zeros(0))
    assert (h * empty).is_empty()
    assert (empty * h).is_empty()


def test_width_mismatch_rejected():
    with pytest.raises(ValueError):
        Histogram(10.0, 0, [1.0]) * Histogram(5.0, 0, [1.0])


class TestEngineConvolve:
    """The empty-outcomes edge case of ``QueryEngine._convolve``."""

    @pytest.fixture(scope="class")
    def engine(self):
        from repro import SNTIndex
        from repro.trajectories import (
            Trajectory,
            TrajectoryPoint,
            TrajectorySet,
        )
        from tests.paper_vectors import TRAJECTORIES

        trajectories = TrajectorySet(
            [
                Trajectory(d, u, [TrajectoryPoint(*p) for p in seq])
                for d, u, seq in TRAJECTORIES
            ]
        )
        from repro import EngineConfig

        index = SNTIndex.build(trajectories, alphabet_size=7)
        return QueryEngine(
            index, network=None, config=EngineConfig(bucket_width_s=BUCKET_WIDTH)
        )

    def test_no_outcomes_yields_empty_histogram(self, engine):
        result = engine._convolve([])
        assert result.is_empty()
        assert result.counts.size == 0
        assert result.bucket_width == BUCKET_WIDTH

    def test_single_outcome_is_unit_normalised(self, engine):
        h = Histogram(BUCKET_WIDTH, 3, [2.0, 6.0])
        result = engine._convolve([h])
        assert result.total == pytest.approx(1.0)
        assert result.offset == 3
        np.testing.assert_allclose(result.counts, [0.25, 0.75])

    def test_many_factors_keep_unit_mass(self, engine):
        factors = [Histogram(BUCKET_WIDTH, i, [1.0, 1.0]) for i in range(30)]
        result = engine._convolve(factors)
        # Raw count convolution would be 2**30; normalisation keeps mass 1.
        assert result.total == pytest.approx(1.0, rel=1e-9)
        assert result.min_value == pytest.approx(
            sum(range(30)) * BUCKET_WIDTH
        )
