"""Tests for travel-time histograms and convolution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.histogram import Histogram

from tests.paper_vectors import WORKED_CONVOLUTION, WORKED_H1, WORKED_H2


class TestConstruction:
    def test_from_values(self):
        h = Histogram.from_values([10.5, 11.2, 10.9, 25.0], bucket_width=1.0)
        assert h.as_dict() == {10: 2, 11: 1, 25: 1}

    def test_from_values_empty(self):
        h = Histogram.from_values([], bucket_width=5.0)
        assert h.is_empty()
        assert h.total == 0

    def test_from_values_negative_rejected(self):
        with pytest.raises(ValueError):
            Histogram.from_values([-1.0], bucket_width=1.0)

    def test_bad_bucket_width(self):
        with pytest.raises(ValueError):
            Histogram(0.0, 0, [1])
        with pytest.raises(ValueError):
            Histogram(-2.0, 0, [1])

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            Histogram(1.0, 0, [1, -1])

    def test_from_dict_roundtrip(self):
        mapping = {3: 2.0, 7: 1.0}
        h = Histogram.from_dict(mapping, bucket_width=2.0)
        assert h.as_dict() == mapping

    def test_bucketing_uses_floor(self):
        h = Histogram.from_values([9.99, 10.0], bucket_width=10.0)
        assert h.as_dict() == {0: 1, 1: 1}


class TestStatistics:
    def test_min_max_range(self):
        h = Histogram.from_dict({4: 1, 9: 3}, bucket_width=10.0)
        assert h.min_value == 40.0
        assert h.max_value == 100.0
        assert h.value_range == 60.0

    def test_min_max_on_empty_raise(self):
        h = Histogram.from_values([], bucket_width=1.0)
        with pytest.raises(ValueError):
            _ = h.min_value
        with pytest.raises(ValueError):
            _ = h.max_value

    def test_mean_uses_midpoints(self):
        h = Histogram.from_dict({0: 1, 1: 1}, bucket_width=10.0)
        assert h.mean() == pytest.approx(10.0)  # midpoints 5 and 15

    def test_quantile_bounds(self):
        h = Histogram.from_dict({0: 1, 9: 1}, bucket_width=1.0)
        assert h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(1.0)
        assert h.quantile(1.0) == pytest.approx(10.0)

    def test_quantile_rejects_out_of_range(self):
        h = Histogram.from_dict({0: 1}, bucket_width=1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_mass_at(self):
        h = Histogram.from_dict({2: 3, 3: 1}, bucket_width=1.0)
        assert h.mass_at(2.5) == pytest.approx(0.75)
        assert h.mass_at(3.0) == pytest.approx(0.25)
        assert h.mass_at(99.0) == 0.0

    def test_count_in_range_aligned(self):
        h = Histogram.from_dict({0: 2, 1: 3, 2: 5}, bucket_width=10.0)
        assert h.count_in_range(0, 20) == pytest.approx(5.0)
        assert h.count_in_range(10, 30) == pytest.approx(8.0)

    def test_count_in_range_fractional(self):
        h = Histogram.from_dict({0: 4}, bucket_width=10.0)
        assert h.count_in_range(0, 5) == pytest.approx(2.0)
        assert h.count_in_range(2.5, 7.5) == pytest.approx(2.0)

    def test_count_in_range_degenerate(self):
        h = Histogram.from_dict({0: 4}, bucket_width=10.0)
        assert h.count_in_range(5, 5) == 0.0
        assert h.count_in_range(7, 3) == 0.0


class TestConvolution:
    def test_paper_worked_example(self):
        # H1 = {[6,7):2, [7,8):1}, H2 = {[4,5):2, [5,6):1} (bucket width 1 s)
        # H1 * H2 = {[10,11):4, [11,12):4, [12,13):1}  (Section 2.3).
        h1 = Histogram.from_dict(WORKED_H1, bucket_width=1.0)
        h2 = Histogram.from_dict(WORKED_H2, bucket_width=1.0)
        assert (h1 * h2).as_dict() == WORKED_CONVOLUTION

    def test_convolution_commutative(self):
        h1 = Histogram.from_dict({1: 2, 3: 1}, bucket_width=1.0)
        h2 = Histogram.from_dict({0: 1, 2: 5}, bucket_width=1.0)
        assert (h1 * h2) == (h2 * h1)

    def test_convolution_total_is_product(self):
        h1 = Histogram.from_dict({1: 2, 3: 1}, bucket_width=1.0)
        h2 = Histogram.from_dict({0: 1, 2: 5}, bucket_width=1.0)
        assert (h1 * h2).total == pytest.approx(h1.total * h2.total)

    def test_convolution_width_mismatch(self):
        h1 = Histogram.from_dict({1: 1}, bucket_width=1.0)
        h2 = Histogram.from_dict({1: 1}, bucket_width=2.0)
        with pytest.raises(ValueError):
            h1.convolve(h2)

    def test_convolution_with_empty(self):
        h1 = Histogram.from_dict({1: 1}, bucket_width=1.0)
        empty = Histogram.from_values([], bucket_width=1.0)
        assert (h1 * empty).is_empty()

    def test_offsets_add(self):
        h1 = Histogram.from_dict({100: 1}, bucket_width=1.0)
        h2 = Histogram.from_dict({200: 1}, bucket_width=1.0)
        assert (h1 * h2).as_dict() == {300: 1}


class TestNormalisation:
    def test_scaled_to_unit_mass(self):
        h = Histogram.from_dict({0: 3, 1: 1}, bucket_width=1.0)
        unit = h.scaled_to_unit_mass()
        assert unit.total == pytest.approx(1.0)
        assert unit.mass_at(0.5) == pytest.approx(0.75)

    def test_scale_empty_raises(self):
        with pytest.raises(ValueError):
            Histogram.from_values([], 1.0).scaled_to_unit_mass()


@settings(max_examples=80, deadline=None)
@given(
    st.lists(st.floats(0, 1000, allow_nan=False), min_size=1, max_size=50),
    st.sampled_from([1.0, 2.5, 10.0]),
)
def test_property_total_equals_count(values, width):
    h = Histogram.from_values(values, bucket_width=width)
    assert h.total == len(values)
    assert h.min_value <= min(values) < h.min_value + width or True
    # Every value lies inside [min_value, max_value).
    assert h.min_value <= min(values)
    assert max(values) < h.max_value


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(0, 40), min_size=1, max_size=25),
    st.lists(st.integers(0, 40), min_size=1, max_size=25),
)
def test_property_convolution_matches_pairwise_sums(xs, ys):
    # For integer values and bucket width 1 the convolution equals the
    # histogram of all pairwise sums exactly.
    h1 = Histogram.from_values([float(x) for x in xs], 1.0)
    h2 = Histogram.from_values([float(y) for y in ys], 1.0)
    direct = Histogram.from_values(
        [float(x + y) for x in xs for y in ys], 1.0
    )
    assert (h1 * h2) == direct


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(0, 500, allow_nan=False), min_size=1, max_size=40),
    st.floats(0.01, 0.99),
)
def test_property_quantile_monotone(values, q):
    h = Histogram.from_values(values, bucket_width=5.0)
    assert h.quantile(0.0) <= h.quantile(q) <= h.quantile(1.0)
