"""Tests for smoothed likelihood and time-of-day histogram stores."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SECONDS_PER_DAY
from repro.histogram import (
    Histogram,
    TimeOfDayHistogramStore,
    log_likelihood,
    smoothed_density,
)


class TestSmoothedDensity:
    def setup_method(self):
        self.h = Histogram.from_dict({10: 8, 11: 2}, bucket_width=10.0)

    def test_positive_everywhere(self):
        for x in [0.0, 50.0, 105.0, 500.0, 10_000.0]:
            assert smoothed_density(x, self.h, 0.99, 0.0, 20_000.0) > 0.0

    def test_mass_raises_density(self):
        inside = smoothed_density(105.0, self.h, 0.99, 0.0, 1000.0)
        outside = smoothed_density(500.0, self.h, 0.99, 0.0, 1000.0)
        assert inside > outside

    def test_gamma_bounds(self):
        with pytest.raises(ValueError):
            smoothed_density(1.0, self.h, 0.0, 0.0, 10.0)
        with pytest.raises(ValueError):
            smoothed_density(1.0, self.h, 1.0, 0.0, 10.0)

    def test_support_bounds(self):
        with pytest.raises(ValueError):
            smoothed_density(1.0, self.h, 0.5, 10.0, 10.0)

    def test_empty_histogram_falls_back_to_uniform(self):
        empty = Histogram.from_values([], 10.0)
        expected = 0.01 * (1.0 / 100.0)
        assert smoothed_density(5.0, empty, 0.99, 0.0, 100.0) == pytest.approx(
            expected
        )

    def test_log_likelihood_is_log_of_density(self):
        x = 105.0
        density = smoothed_density(x, self.h, 0.99, 0.0, 1000.0)
        assert log_likelihood(x, self.h, 0.99, 0.0, 1000.0) == pytest.approx(
            math.log(density)
        )


class TestTimeOfDayStore:
    def test_add_and_total(self):
        store = TimeOfDayHistogramStore(bucket_width_s=3600)
        store.add_traversals(7, np.array([100, 7200, SECONDS_PER_DAY + 100]))
        assert store.total(7) == 3
        assert store.total(8) == 0
        assert len(store) == 1

    def test_count_window(self):
        store = TimeOfDayHistogramStore(bucket_width_s=3600)
        # Two traversals at 08:xx, one at 20:xx.
        store.add_traversals(1, np.array([8 * 3600 + 5, 8 * 3600 + 10, 20 * 3600]))
        assert store.count_window(1, 8 * 3600, 3600) == pytest.approx(2.0)
        assert store.count_window(1, 0, SECONDS_PER_DAY) == pytest.approx(3.0)

    def test_count_window_wraps_midnight(self):
        store = TimeOfDayHistogramStore(bucket_width_s=3600)
        store.add_traversals(1, np.array([23 * 3600 + 100, 600]))
        count = store.count_window(1, 23 * 3600, 7200)
        assert count == pytest.approx(2.0)

    def test_count_window_fractional_buckets(self):
        store = TimeOfDayHistogramStore(bucket_width_s=3600)
        store.add_traversals(1, np.arange(0, 3600, 60))  # 60 in first hour
        # Half of the first bucket -> expect roughly half the count.
        assert store.count_window(1, 0, 1800) == pytest.approx(30.0)

    def test_selectivity_histogram_vs_uniform(self):
        store = TimeOfDayHistogramStore(bucket_width_s=3600)
        # All mass in one hour: selectivity of that hour is 1.0.
        store.add_traversals(2, np.full(50, 9 * 3600 + 30))
        assert store.selectivity(2, 9 * 3600, 3600) == pytest.approx(1.0)
        assert store.selectivity(2, 14 * 3600, 3600) == pytest.approx(0.0)

    def test_selectivity_unknown_edge_uniform_fallback(self):
        store = TimeOfDayHistogramStore(bucket_width_s=3600)
        assert store.selectivity(99, 0, 3600) == pytest.approx(1 / 24)

    def test_partitioned_histograms_are_separate(self):
        store = TimeOfDayHistogramStore(bucket_width_s=3600)
        store.add_traversals(1, np.array([100]), partition=0)
        store.add_traversals(1, np.array([200, 300]), partition=1)
        assert store.total(1, partition=0) == 1
        assert store.total(1, partition=1) == 2
        assert len(store) == 2

    def test_bad_bucket_width(self):
        with pytest.raises(ValueError):
            TimeOfDayHistogramStore(bucket_width_s=0)
        with pytest.raises(ValueError):
            TimeOfDayHistogramStore(bucket_width_s=SECONDS_PER_DAY + 1)

    def test_memory_grows_with_finer_buckets(self):
        coarse = TimeOfDayHistogramStore(bucket_width_s=600)
        fine = TimeOfDayHistogramStore(bucket_width_s=60)
        for store in (coarse, fine):
            store.add_traversals(1, np.array([100]))
        assert fine.size_in_bytes() > coarse.size_in_bytes()

    def test_empty_add_is_noop(self):
        store = TimeOfDayHistogramStore()
        store.add_traversals(1, np.empty(0, np.int64))
        assert len(store) == 0


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.integers(0, 3 * SECONDS_PER_DAY), min_size=1, max_size=100
    ),
    st.integers(0, SECONDS_PER_DAY - 1),
    st.integers(1, SECONDS_PER_DAY),
)
def test_property_tod_count_matches_model(timestamps, start, duration):
    store = TimeOfDayHistogramStore(bucket_width_s=60)
    store.add_traversals(1, np.asarray(timestamps))
    counted = store.count_window(1, start, duration)
    # Model with bucket-resolution timestamps (store sees 60 s buckets).
    expected = 0.0
    for t in timestamps:
        bucket_start = ((t % SECONDS_PER_DAY) // 60) * 60
        # Fractional overlap of this traversal's bucket with the window.
        window = [(start, min(start + duration, SECONDS_PER_DAY))]
        if start + duration > SECONDS_PER_DAY:
            window.append((0, start + duration - SECONDS_PER_DAY))
        for w_lo, w_hi in window:
            overlap = min(bucket_start + 60, w_hi) - max(bucket_start, w_lo)
            if overlap > 0:
                expected += overlap / 60
    assert counted == pytest.approx(min(expected, len(timestamps)), abs=1e-6)
