"""Tests for histogram merging (pooling)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.histogram import Histogram


class TestMerge:
    def test_disjoint_ranges(self):
        a = Histogram.from_dict({1: 2}, 1.0)
        b = Histogram.from_dict({5: 3}, 1.0)
        assert a.merge(b).as_dict() == {1: 2, 5: 3}

    def test_overlapping_ranges(self):
        a = Histogram.from_dict({1: 2, 2: 1}, 1.0)
        b = Histogram.from_dict({2: 4, 3: 1}, 1.0)
        assert a.merge(b).as_dict() == {1: 2, 2: 5, 3: 1}

    def test_commutative(self):
        a = Histogram.from_dict({0: 1, 7: 2}, 1.0)
        b = Histogram.from_dict({3: 4}, 1.0)
        assert a.merge(b) == b.merge(a)

    def test_merge_with_empty(self):
        a = Histogram.from_dict({1: 2}, 1.0)
        empty = Histogram.from_values([], 1.0)
        assert a.merge(empty) == a
        assert empty.merge(a) == a

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            Histogram.from_dict({1: 1}, 1.0).merge(
                Histogram.from_dict({1: 1}, 2.0)
            )

    def test_total_is_sum(self):
        a = Histogram.from_dict({1: 2, 9: 3}, 1.0)
        b = Histogram.from_dict({4: 5}, 1.0)
        assert a.merge(b).total == a.total + b.total


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(0, 50), max_size=30),
    st.lists(st.integers(0, 50), max_size=30),
)
def test_property_merge_equals_concatenation(xs, ys):
    merged = Histogram.from_values([float(x) for x in xs], 1.0).merge(
        Histogram.from_values([float(y) for y in ys], 1.0)
    )
    direct = Histogram.from_values([float(v) for v in xs + ys], 1.0)
    assert merged == direct
