"""Tests for sMAPE, weighted error, log-likelihood, and q-error."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.histogram import Histogram
from repro.metrics import (
    average_log_likelihood,
    mean_q_error_log10,
    q_error,
    q_error_log10,
    smape,
    symmetric_ape,
    weighted_error_terms,
)


class TestSMAPE:
    def test_perfect_estimate(self):
        assert symmetric_ape(100.0, 100.0) == 0.0

    def test_symmetry(self):
        assert symmetric_ape(50.0, 100.0) == symmetric_ape(100.0, 50.0)

    def test_known_value(self):
        # |150-100| / (0.5*(150+100)) = 50/125 = 40%.
        assert symmetric_ape(150.0, 100.0) == pytest.approx(40.0)

    def test_bounded_by_200(self):
        assert symmetric_ape(1e9, 1e-9) < 200.0 + 1e-6

    def test_mean_over_query_set(self):
        assert smape([100, 150], [100, 100]) == pytest.approx(20.0)

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            smape([], [])

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            smape([1.0], [1.0, 2.0])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            symmetric_ape(0.0, 0.0)


class TestWeightedError:
    def test_weights_by_length(self):
        # Long accurate sub-path + short bad sub-path: error dominated by
        # the long one.
        error = weighted_error_terms(
            sub_means=[100.0, 50.0],
            sub_truths=[100.0, 100.0],
            sub_lengths_m=[9000.0, 1000.0],
        )
        assert error == pytest.approx(0.9 * 0.0 + 0.1 * symmetric_ape(50, 100))

    def test_single_subquery_equals_smape(self):
        error = weighted_error_terms([150.0], [100.0], [5000.0])
        assert error == pytest.approx(symmetric_ape(150.0, 100.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_error_terms([], [], [])
        with pytest.raises(ValueError):
            weighted_error_terms([1.0], [1.0], [0.0])
        with pytest.raises(ValueError):
            weighted_error_terms([1.0, 2.0], [1.0], [1.0])


class TestQError:
    def test_exact_estimate(self):
        assert q_error(10, 10) == 1.0
        assert q_error_log10(10, 10) == 0.0

    def test_order_of_magnitude(self):
        assert q_error_log10(100, 10) == pytest.approx(1.0)
        assert q_error_log10(10, 100) == pytest.approx(1.0)

    def test_zero_handling(self):
        # Clamped to 1 on both sides (Stefanoni et al.).
        assert q_error(0, 0) == 1.0
        assert q_error(0, 50) == 50.0
        assert q_error(50, 0) == 50.0

    def test_mean(self):
        assert mean_q_error_log10([10, 100], [10, 10]) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_q_error_log10([], [])
        with pytest.raises(ValueError):
            mean_q_error_log10([1], [1, 2])


class TestAverageLogLikelihood:
    def test_peaked_histogram_beats_flat(self):
        peaked = Histogram.from_dict({10: 100}, bucket_width=10.0)
        flat = Histogram.from_dict(
            {i: 1 for i in range(5, 16)}, bucket_width=10.0
        )
        truth = [105.0]
        assert average_log_likelihood(truth, [peaked]) > (
            average_log_likelihood(truth, [flat])
        )

    def test_wrong_histogram_punished(self):
        right = Histogram.from_dict({10: 10}, bucket_width=10.0)
        wrong = Histogram.from_dict({50: 10}, bucket_width=10.0)
        truth = [105.0]
        assert average_log_likelihood(truth, [right]) > (
            average_log_likelihood(truth, [wrong])
        )

    def test_finite_even_for_missing_mass(self):
        wrong = Histogram.from_dict({50: 10}, bucket_width=10.0)
        value = average_log_likelihood([10.0], [wrong])
        assert math.isfinite(value)

    def test_validation(self):
        with pytest.raises(ValueError):
            average_log_likelihood([], [])
        with pytest.raises(ValueError):
            average_log_likelihood([1.0], [])


@settings(max_examples=60, deadline=None)
@given(st.floats(0.1, 1e6), st.floats(0.1, 1e6))
def test_property_q_error_at_least_one(estimate, actual):
    assert q_error(estimate, actual) >= 1.0


@settings(max_examples=60, deadline=None)
@given(st.floats(0.1, 1e6), st.floats(0.1, 1e6))
def test_property_smape_bounds(estimate, truth):
    value = symmetric_ape(estimate, truth)
    assert 0.0 <= value <= 200.0
