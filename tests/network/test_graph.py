"""Tests for the road-network graph, including the paper's Table 1."""

import pytest

from repro.errors import NetworkError, UnknownEdgeError
from repro.network import Edge, RoadCategory, RoadNetwork, ZoneType


def build_paper_network() -> RoadNetwork:
    """The example network of Figure 1 / Table 1.

    Topology (vertices chosen to make <A,B,E>, <A,C,D,E>, <A,B,F> paths):
    A: 1->2, B: 2->3, C: 2->4, D: 4->3, E: 3->5, F: 3->6.
    """
    network = RoadNetwork()
    for vertex in range(1, 7):
        network.add_vertex(vertex, (float(vertex), 0.0))
    rows = [
        (1, 1, 2, RoadCategory.MOTORWAY, ZoneType.RURAL, 900.0, 110.0),
        (2, 2, 3, RoadCategory.PRIMARY, ZoneType.CITY, 120.0, 50.0),
        (3, 2, 4, RoadCategory.SECONDARY, ZoneType.CITY, 40.0, 30.0),
        (4, 4, 3, RoadCategory.SECONDARY, ZoneType.CITY, 80.0, 30.0),
        (5, 3, 5, RoadCategory.PRIMARY, ZoneType.CITY, 100.0, 50.0),
        (6, 3, 6, RoadCategory.PRIMARY, ZoneType.RURAL, 800.0, 80.0),
    ]
    for edge_id, s, t, cat, zone, length, speed in rows:
        network.add_edge(
            Edge(edge_id, s, t, cat, zone, length, speed)
        )
    return network


@pytest.fixture
def paper_network():
    return build_paper_network()


class TestTable1:
    """estimateTT values from Table 1 (to the paper's 0.1 s rounding)."""

    @pytest.mark.parametrize(
        "edge_id,expected",
        [(1, 29.5), (2, 8.6), (3, 4.8), (4, 9.6), (5, 7.2), (6, 36.0)],
    )
    def test_estimate_tt(self, paper_network, edge_id, expected):
        assert paper_network.estimate_tt(edge_id) == pytest.approx(
            expected, abs=0.05
        )


class TestGraphBasics:
    def test_counts(self, paper_network):
        assert paper_network.n_vertices == 6
        assert paper_network.n_edges == 6

    def test_unknown_edge(self, paper_network):
        with pytest.raises(UnknownEdgeError):
            paper_network.edge(99)

    def test_has_edge(self, paper_network):
        assert paper_network.has_edge(1)
        assert not paper_network.has_edge(42)

    def test_out_in_edges(self, paper_network):
        assert set(paper_network.out_edges(2)) == {2, 3}
        assert set(paper_network.in_edges(3)) == {2, 4}

    def test_alphabet_size(self, paper_network):
        assert paper_network.alphabet_size == 7

    def test_duplicate_edge_id_rejected(self, paper_network):
        with pytest.raises(NetworkError):
            paper_network.add_edge(
                Edge(1, 1, 2, RoadCategory.PRIMARY, ZoneType.CITY, 5.0, 50.0)
            )

    def test_edge_requires_vertices(self):
        network = RoadNetwork()
        network.add_vertex(1, (0, 0))
        with pytest.raises(NetworkError):
            network.add_edge(
                Edge(1, 1, 2, RoadCategory.PRIMARY, ZoneType.CITY, 5.0, 50.0)
            )

    def test_edge_id_zero_reserved(self):
        with pytest.raises(NetworkError):
            Edge(0, 1, 2, RoadCategory.PRIMARY, ZoneType.CITY, 5.0, 50.0)

    def test_nonpositive_length_rejected(self):
        with pytest.raises(NetworkError):
            Edge(1, 1, 2, RoadCategory.PRIMARY, ZoneType.CITY, 0.0, 50.0)


class TestSpeedFallback:
    def test_median_of_category(self):
        network = RoadNetwork()
        for vertex in range(6):
            network.add_vertex(vertex, (vertex, 0))
        network.add_edge(Edge(1, 0, 1, RoadCategory.PRIMARY, ZoneType.CITY, 100, 40.0))
        network.add_edge(Edge(2, 1, 2, RoadCategory.PRIMARY, ZoneType.CITY, 100, 80.0))
        network.add_edge(Edge(3, 2, 3, RoadCategory.PRIMARY, ZoneType.CITY, 100, 60.0))
        network.add_edge(Edge(4, 3, 4, RoadCategory.PRIMARY, ZoneType.CITY, 100, None))
        assert network.speed_limit(4) == pytest.approx(60.0)

    def test_typical_fallback_when_category_unknown(self):
        network = RoadNetwork()
        network.add_vertex(0, (0, 0))
        network.add_vertex(1, (1, 0))
        network.add_edge(
            Edge(1, 0, 1, RoadCategory.MOTORWAY, ZoneType.RURAL, 900, None)
        )
        assert network.speed_limit(1) == pytest.approx(110.0)

    def test_cache_invalidation_on_add(self):
        network = RoadNetwork()
        for vertex in range(4):
            network.add_vertex(vertex, (vertex, 0))
        network.add_edge(Edge(1, 0, 1, RoadCategory.PRIMARY, ZoneType.CITY, 100, None))
        assert network.speed_limit(1) == pytest.approx(80.0)  # typical
        network.add_edge(Edge(2, 1, 2, RoadCategory.PRIMARY, ZoneType.CITY, 100, 40.0))
        assert network.speed_limit(1) == pytest.approx(40.0)  # median now


class TestPaths:
    def test_is_path(self, paper_network):
        assert paper_network.is_path([1, 2, 5])  # A,B,E
        assert paper_network.is_path([1, 3, 4, 5])  # A,C,D,E
        assert not paper_network.is_path([1, 5])  # A then E: disconnected
        assert not paper_network.is_path([])

    def test_path_length(self, paper_network):
        assert paper_network.path_length_m([1, 2, 5]) == pytest.approx(1120.0)

    def test_path_estimate_tt(self, paper_network):
        expected = 29.45 + 8.64 + 7.2
        assert paper_network.path_estimate_tt([1, 2, 5]) == pytest.approx(
            expected, abs=0.1
        )
