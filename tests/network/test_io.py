"""Tests for network/trajectory persistence."""

import pytest

from repro.errors import NetworkError
from repro.network import (
    generate_network,
    load_network,
    load_trajectories,
    save_network,
    save_trajectories,
)
from repro.trajectories import (
    Trajectory,
    TrajectoryPoint,
    TrajectorySet,
    generate_dataset,
)


class TestNetworkRoundTrip:
    def test_synthetic_network_roundtrip(self, tmp_path):
        synthetic = generate_network("tiny", seed=0)
        path = tmp_path / "network.json"
        save_network(synthetic.network, path)
        loaded = load_network(path)
        assert loaded.n_vertices == synthetic.network.n_vertices
        assert loaded.n_edges == synthetic.network.n_edges
        for edge in synthetic.network.edges():
            twin = loaded.edge(edge.edge_id)
            assert twin.source == edge.source
            assert twin.target == edge.target
            assert twin.category == edge.category
            assert twin.zone == edge.zone
            assert twin.length_m == pytest.approx(edge.length_m)
            assert twin.speed_limit_kmh == edge.speed_limit_kmh

    def test_estimate_tt_preserved(self, tmp_path):
        synthetic = generate_network("tiny", seed=0)
        path = tmp_path / "network.json"
        save_network(synthetic.network, path)
        loaded = load_network(path)
        for edge_id in list(synthetic.network.edge_ids())[:30]:
            assert loaded.estimate_tt(edge_id) == pytest.approx(
                synthetic.network.estimate_tt(edge_id)
            )

    def test_missing_file(self, tmp_path):
        with pytest.raises(NetworkError):
            load_network(tmp_path / "absent.json")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(NetworkError):
            load_network(path)


class TestTrajectoryRoundTrip:
    def test_roundtrip(self, tmp_path):
        trajectories = TrajectorySet(
            [
                Trajectory(
                    0,
                    7,
                    [TrajectoryPoint(1, 0, 3.0), TrajectoryPoint(2, 3, 4.5)],
                ),
                Trajectory(1, 9, [TrajectoryPoint(5, 100, 2.0)]),
            ]
        )
        path = tmp_path / "trajectories.txt"
        save_trajectories(trajectories, path)
        loaded = load_trajectories(path)
        assert len(loaded) == 2
        assert loaded.by_id(0).points == trajectories.by_id(0).points
        assert loaded.by_id(1).user_id == 9

    def test_generated_dataset_roundtrip(self, tmp_path):
        dataset = generate_dataset("tiny", seed=1)
        path = tmp_path / "all.txt"
        sample = TrajectorySet(list(dataset.trajectories)[:50])
        save_trajectories(sample, path)
        loaded = load_trajectories(path)
        assert len(loaded) == 50
        loaded.validate()
        for original in sample:
            twin = loaded.by_id(original.traj_id)
            assert twin.path == original.path
            assert twin.duration() == pytest.approx(original.duration())

    def test_empty_set(self, tmp_path):
        path = tmp_path / "empty.txt"
        save_trajectories(TrajectorySet(), path)
        assert len(load_trajectories(path)) == 0

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0,1,notavalidtriple\n")
        with pytest.raises(NetworkError):
            load_trajectories(path)
