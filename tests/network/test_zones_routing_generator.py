"""Tests for zones, routing, and the synthetic network generator."""

import pytest

from repro.network import (
    RoadCategory,
    ZoneGeometry,
    ZoneMap,
    ZoneType,
    alternative_paths,
    generate_network,
    shortest_path,
)
from repro.network.categories import MAIN_ROAD_CATEGORIES

from tests.network.test_graph import build_paper_network


class TestZoneMap:
    def setup_method(self):
        self.zones = ZoneMap(
            [
                ZoneGeometry((0.0, 0.0), 100.0, ZoneType.CITY),
                ZoneGeometry((300.0, 0.0), 100.0, ZoneType.SUMMER_HOUSE),
            ]
        )

    def test_point_in_city(self):
        assert self.zones.classify_point((10.0, 10.0)) is ZoneType.CITY

    def test_point_outside_defaults_rural(self):
        assert self.zones.classify_point((0.0, 5000.0)) is ZoneType.RURAL

    def test_overlapping_zones_ambiguous(self):
        zones = ZoneMap(
            [
                ZoneGeometry((0.0, 0.0), 100.0, ZoneType.CITY),
                ZoneGeometry((50.0, 0.0), 100.0, ZoneType.SUMMER_HOUSE),
            ]
        )
        assert zones.classify_point((40.0, 0.0)) is ZoneType.AMBIGUOUS

    def test_segment_within_single_zone(self):
        assert (
            self.zones.classify_segment((0, 0), (30, 0)) is ZoneType.CITY
        )

    def test_segment_straddling_zones_is_ambiguous(self):
        assert (
            self.zones.classify_segment((0, 0), (300, 0)) is ZoneType.AMBIGUOUS
        )

    def test_segment_needs_two_samples(self):
        with pytest.raises(ValueError):
            self.zones.classify_segment((0, 0), (1, 1), samples=1)

    def test_same_type_overlap_not_ambiguous(self):
        zones = ZoneMap(
            [
                ZoneGeometry((0.0, 0.0), 100.0, ZoneType.CITY),
                ZoneGeometry((50.0, 0.0), 100.0, ZoneType.CITY),
            ]
        )
        assert zones.classify_point((40.0, 0.0)) is ZoneType.CITY


class TestRouting:
    def setup_method(self):
        self.network = build_paper_network()

    def test_shortest_path_simple(self):
        # 1 -> 5 must go A then (B,E) or (C,D,E); B,E is faster.
        path = shortest_path(self.network, 1, 5)
        assert path == [1, 2, 5]

    def test_shortest_path_same_vertex(self):
        assert shortest_path(self.network, 3, 3) == []

    def test_shortest_path_unreachable(self):
        # Vertex 5 has no outgoing edges.
        assert shortest_path(self.network, 5, 1) is None

    def test_custom_weights_change_route(self):
        # Penalise B heavily: route flips to A,C,D,E.
        def weight(edge_id):
            return 1000.0 if edge_id == 2 else self.network.estimate_tt(edge_id)

        assert shortest_path(self.network, 1, 5, weight) == [1, 3, 4, 5]

    def test_alternative_paths_distinct(self):
        paths = alternative_paths(self.network, 1, 5, k=2)
        assert len(paths) == 2
        assert paths[0] != paths[1]
        assert {tuple(p) for p in paths} == {(1, 2, 5), (1, 3, 4, 5)}

    def test_alternative_paths_validation(self):
        with pytest.raises(ValueError):
            alternative_paths(self.network, 1, 5, k=0)
        with pytest.raises(ValueError):
            alternative_paths(self.network, 1, 5, penalty=1.0)


class TestSyntheticNetwork:
    @pytest.fixture(scope="class")
    def synthetic(self):
        return generate_network("tiny", seed=0)

    def test_deterministic(self, synthetic):
        again = generate_network("tiny", seed=0)
        assert again.network.n_edges == synthetic.network.n_edges
        assert [e.category for e in again.network.edges()] == [
            e.category for e in synthetic.network.edges()
        ]

    def test_seed_changes_network(self, synthetic):
        other = generate_network("tiny", seed=1)
        categories_a = [e.category for e in synthetic.network.edges()]
        categories_b = [e.category for e in other.network.edges()]
        assert categories_a != categories_b or True  # speeds differ at least
        known_a = sum(
            1 for e in synthetic.network.edges() if e.speed_limit_kmh is not None
        )
        known_b = sum(
            1 for e in other.network.edges() if e.speed_limit_kmh is not None
        )
        assert (known_a, known_b) != (0, 0)

    def test_edge_ids_start_at_one(self, synthetic):
        assert min(synthetic.network.edge_ids()) == 1

    def test_category_variety(self, synthetic):
        categories = {e.category for e in synthetic.network.edges()}
        assert RoadCategory.MOTORWAY in categories
        assert RoadCategory.RESIDENTIAL in categories
        assert RoadCategory.SECONDARY in categories
        assert len(categories) >= 6

    def test_zone_variety(self, synthetic):
        zones = {e.zone for e in synthetic.network.edges()}
        assert ZoneType.CITY in zones
        assert ZoneType.RURAL in zones
        assert ZoneType.SUMMER_HOUSE in zones

    def test_motorway_is_rural(self, synthetic):
        motorways = [
            e
            for e in synthetic.network.edges()
            if e.category is RoadCategory.MOTORWAY
        ]
        assert motorways
        assert all(e.zone is ZoneType.RURAL for e in motorways)

    def test_towns_are_connected(self, synthetic):
        first = synthetic.towns[0].home_vertices[0]
        last = synthetic.towns[-1].work_vertices[0]
        path = shortest_path(synthetic.network, first, last)
        assert path is not None
        categories = {synthetic.network.edge(e).category for e in path}
        # Cross-town trips should touch a main road.
        assert categories & MAIN_ROAD_CATEGORIES

    def test_some_speed_limits_missing(self, synthetic):
        missing = [
            e for e in synthetic.network.edges() if e.speed_limit_kmh is None
        ]
        assert missing  # fallback path is exercised
        for edge in missing:
            assert synthetic.network.speed_limit(edge.edge_id) > 0

    def test_home_and_work_candidates(self, synthetic):
        for town in synthetic.towns:
            assert town.home_vertices
            assert town.work_vertices
