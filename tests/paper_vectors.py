"""Shared test vectors from the paper's running example (Sections 2 and 4).

The example road network of Figure 1 has six directed edges A..F; Table 1
gives their attributes.  The example trajectory set is:

    tr0 : (0, u1) -> <(A,0,3), (B,3,4), (E,7,4)>
    tr1 : (1, u2) -> <(A,2,4), (C,6,2), (D,8,4), (E,12,5)>
    tr2 : (2, u2) -> <(A,4,3), (B,7,3), (F,10,6)>
    tr3 : (3, u1) -> <(A,6,3), (B,9,3), (E,12,4)>

yielding the trajectory string T = ABE$ACDE$ABF$ABE$ with BWT
EFEE$$$$AAAACBDBB (Figure 3) and ISA ranges R(<A>) = [4, 8) and
R(<A,B>) = [4, 7).
"""

from __future__ import annotations

# Symbol mapping: $ = 0 (terminator), A..F = 1..6.
DOLLAR, A, B, C, D, E, F = 0, 1, 2, 3, 4, 5, 6

SYMBOL_NAMES = {0: "$", 1: "A", 2: "B", 3: "C", 4: "D", 5: "E", 6: "F"}

#: T = ABE$ACDE$ABF$ABE$
TRAJECTORY_STRING = [A, B, E, DOLLAR, A, C, D, E, DOLLAR, A, B, F, DOLLAR, A, B, E, DOLLAR]

#: Expected Burrows-Wheeler transform: EFEE$$$$AAAACBDBB (Figure 3).
EXPECTED_BWT = [E, F, E, E, DOLLAR, DOLLAR, DOLLAR, DOLLAR, A, A, A, A, C, B, D, B, B]

#: Paper ISA ranges.
ISA_RANGE_A = (4, 8)
ISA_RANGE_AB = (4, 7)

#: Trajectories: (trajectory_id, user_id, [(edge, entry_time, travel_time)]).
TRAJECTORIES = [
    (0, 1, [(A, 0, 3.0), (B, 3, 4.0), (E, 7, 4.0)]),
    (1, 2, [(A, 2, 4.0), (C, 6, 2.0), (D, 8, 4.0), (E, 12, 5.0)]),
    (2, 2, [(A, 4, 3.0), (B, 7, 3.0), (F, 10, 6.0)]),
    (3, 1, [(A, 6, 3.0), (B, 9, 3.0), (E, 12, 4.0)]),
]

#: Table 1: edge -> (category, zone, speed limit km/h, length m, estimateTT s).
TABLE_1 = {
    A: ("motorway", "rural", 110, 900, 29.5),
    B: ("primary", "city", 50, 120, 8.6),
    C: ("secondary", "city", 30, 40, 4.8),
    D: ("secondary", "city", 30, 80, 9.6),
    E: ("primary", "city", 50, 100, 7.2),
    F: ("primary", "rural", 80, 800, 36.0),
}

#: Worked query example (Section 2.3): Q = spq(<A,B,E>, [0,15), u=u1, 2)
#: returns {tr0, tr3} and H = {[10,11): 1, [11,12): 1}.  The split into
#: Q1 = spq(<A,B>, [0,15), {}, 3) and Q2 = spq(<E>, [0,15), {}, 3) gives
#: H1 = {[6,7): 2, [7,8): 1}, H2 = {[4,5): 2, [5,6): 1} and the convolution
#: H1 * H2 = {[10,11): 4, [11,12): 4, [12,13): 1}.
WORKED_QUERY_PATH = [A, B, E]
WORKED_QUERY_RESULT_IDS = {0, 3}
WORKED_H = {10: 1, 11: 1}
WORKED_H1 = {6: 2, 7: 1}
WORKED_H2 = {4: 2, 5: 1}
WORKED_CONVOLUTION = {10: 4, 11: 4, 12: 1}
