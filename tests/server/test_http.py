"""Unit tests for the serving tier's building blocks (ISSUE 8).

HTTP/1.1 framing (``read_request``/``render_response``), the validated
:class:`ServerConfig`, the collector's admission/short-circuit rules,
and the client's error-body mapping — all without opening a socket.
"""

import asyncio
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import AdmissionError, ConfigurationError, ServerError
from repro.server import ServerConfig
from repro.server.client import _error_from_body
from repro.server.collector import RequestCollector
from repro.server.http import (
    HttpProtocolError,
    error_body,
    json_response,
    read_request,
    render_response,
)
from repro.server.stats import LatencyRing, ServerStats


# --------------------------------------------------------------------- #
# HTTP framing
# --------------------------------------------------------------------- #


def _parse(data: bytes, max_body_bytes: int = 1_048_576):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader, max_body_bytes)

    return asyncio.run(run())


class TestReadRequest:
    def test_get_without_body(self):
        request = _parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.body == b""
        assert request.keep_alive

    def test_post_with_content_length(self):
        request = _parse(
            b"POST /v1/query HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd"
        )
        assert request.method == "POST"
        assert request.body == b"abcd"

    def test_clean_eof_returns_none(self):
        assert _parse(b"") is None

    def test_header_names_lowercased_and_query_string_stripped(self):
        request = _parse(
            b"GET /stats?verbose=1 HTTP/1.1\r\nX-Thing: Value\r\n\r\n"
        )
        assert request.path == "/stats"
        assert request.headers["x-thing"] == "Value"

    def test_connection_close_drops_keep_alive(self):
        request = _parse(
            b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        assert not request.keep_alive

    @pytest.mark.parametrize(
        "raw",
        [
            b"NONSENSE\r\n\r\n",  # malformed request line
            b"GET /x HTTP/9.9\r\n\r\n",  # unsupported protocol
            b"GET /x HTTP/1.1\r\nContent-Length: zap\r\n\r\n",
            b"GET /x HTTP/1.1\r\nContent-Length: -4\r\n\r\n",
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbroken header line\r\n\r\n",
        ],
        ids=[
            "request-line",
            "protocol",
            "content-length",
            "negative-length",
            "chunked",
            "header-line",
        ],
    )
    def test_malformed_framing_raises_protocol_error(self, raw):
        with pytest.raises(HttpProtocolError):
            _parse(raw)

    def test_body_over_limit_is_413(self):
        with pytest.raises(HttpProtocolError) as info:
            _parse(
                b"POST /x HTTP/1.1\r\nContent-Length: 5000\r\n\r\n",
                max_body_bytes=1024,
            )
        assert info.value.status == 413

    def test_truncated_request_raises(self):
        with pytest.raises(HttpProtocolError):
            _parse(b"GET /x HTTP/1.1\r\nHost:")

    def test_json_helper_maps_bad_body_to_protocol_error(self):
        request = _parse(
            b"POST /x HTTP/1.1\r\nContent-Length: 8\r\n\r\n{not js}"
        )
        with pytest.raises(HttpProtocolError):
            request.json()


class TestRenderResponse:
    def test_shape_and_length(self):
        raw = render_response(200, b'{"ok":1}')
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 8" in head
        assert b"Connection: keep-alive" in head
        assert body == b'{"ok":1}'

    def test_close_and_extra_headers(self):
        raw = render_response(
            429, b"{}", keep_alive=False,
            extra_headers=(("Retry-After", "1"),),
        )
        assert b"Connection: close" in raw
        assert b"Retry-After: 1" in raw

    def test_error_body_wire_form(self):
        body = error_body("AdmissionError", "full", retry_after_s=0.05)
        assert body == {
            "error": {
                "type": "AdmissionError",
                "message": "full",
                "retry_after_s": 0.05,
            }
        }

    def test_json_response_round_trips(self):
        import json

        raw = json_response(200, {"a": [1, 2]})
        body = raw.partition(b"\r\n\r\n")[2]
        assert json.loads(body) == {"a": [1, 2]}


# --------------------------------------------------------------------- #
# ServerConfig validation
# --------------------------------------------------------------------- #


class TestServerConfig:
    def test_defaults_are_valid(self):
        config = ServerConfig()
        assert config.window_s == pytest.approx(0.005)
        assert config.max_batch <= config.max_inflight

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"host": ""},
            {"port": -1},
            {"port": 70_000},
            {"port": True},
            {"window_s": -0.1},
            {"window_s": 30.0},  # a window is ms, not minutes
            {"window_s": "soon"},
            {"max_batch": 0},
            {"max_inflight": 0},
            {"executor_workers": 0},
            {"latency_window": 0},
            {"max_batch": 64, "max_inflight": 8},
            {"retry_after_s": 0},
            {"shutdown_grace_s": -1},
            {"max_body_bytes": 16},
        ],
        ids=lambda kw: ",".join(sorted(kw)),
    )
    def test_invalid_values_raise_configuration_error(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServerConfig(**kwargs)

    def test_replace_revalidates(self):
        config = ServerConfig()
        assert config.replace(max_batch=8).max_batch == 8
        with pytest.raises(ConfigurationError):
            config.replace(max_batch=config.max_inflight + 1)

    def test_configuration_error_is_value_error(self):
        # Same contract as EngineConfig: library-typed AND stdlib-shaped.
        with pytest.raises(ValueError):
            ServerConfig(port=-1)


# --------------------------------------------------------------------- #
# Collector admission + short-circuits (no sockets, fake db)
# --------------------------------------------------------------------- #


class _FakeDB:
    """Stands in for TravelTimeDB: echoes one token per request."""

    def __init__(self):
        self.calls = []

    def query_many_with_stats(self, requests):
        self.calls.append(len(requests))
        return [("answer", request) for request in requests], None


def _collector(db, **config_kwargs):
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("window_s", 0.005)
    config = ServerConfig(**config_kwargs)
    executor = ThreadPoolExecutor(max_workers=1)
    collector = RequestCollector(
        db=db,
        config=config,
        executor=executor,
        stats=ServerStats(config.latency_window),
    )
    return collector, executor


class TestCollector:
    def test_round_trip_resolves_futures_in_order(self):
        async def main():
            db = _FakeDB()
            collector, executor = _collector(db)
            collector.start()
            futures = collector.submit_many(["a", "b", "c"])
            results = await asyncio.gather(*futures)
            assert [token for _, token in results] == ["a", "b", "c"]
            assert collector.inflight == 0
            await collector.drain_and_stop()
            executor.shutdown()
            # All three shared one collection window -> one round.
            assert db.calls == [3]

        asyncio.run(main())

    def test_empty_submission_short_circuits(self):
        async def main():
            collector, executor = _collector(_FakeDB())
            collector.start()
            assert collector.submit_many([]) == []
            await collector.drain_and_stop()
            executor.shutdown()

        asyncio.run(main())

    def test_over_admission_raises_with_retry_hint(self):
        async def main():
            collector, executor = _collector(
                _FakeDB(), max_inflight=2, max_batch=2, retry_after_s=0.25
            )
            # Not started: nothing drains, so admissions accumulate.
            collector.submit_many(["a", "b"])
            with pytest.raises(AdmissionError) as info:
                collector.submit_many(["c"])
            assert info.value.retry_after_s == pytest.approx(0.25)
            assert collector.inflight == 2  # rejected trips never queue
            collector.start()
            await collector.drain_and_stop()
            executor.shutdown()

        asyncio.run(main())

    def test_window_of_only_cancelled_entries_runs_no_round(self):
        """The dead-window short-circuit: every entry abandoned before
        the round forms means no executor submission and no deadlock —
        inflight returns to zero and later trips still flow."""

        async def main():
            db = _FakeDB()
            collector, executor = _collector(db)
            collector.start()
            doomed = collector.submit_many(["a", "b"])
            for future in doomed:
                future.cancel()
            await asyncio.sleep(0.05)
            assert db.calls == []
            assert collector.inflight == 0
            # The collector is still alive for real work afterwards.
            (future,) = collector.submit_many(["c"])
            assert (await future)[1] == "c"
            await collector.drain_and_stop()
            executor.shutdown()
            assert db.calls == [1]

        asyncio.run(main())

    def test_submission_after_drain_is_server_error(self):
        async def main():
            collector, executor = _collector(_FakeDB())
            collector.start()
            await collector.drain_and_stop()
            with pytest.raises(ServerError):
                collector.submit_many(["late"])
            executor.shutdown()

        asyncio.run(main())

    def test_failed_round_fails_every_member(self):
        class ExplodingDB:
            def query_many_with_stats(self, requests):
                raise RuntimeError("index on fire")

        async def main():
            collector, executor = _collector(ExplodingDB())
            collector.start()
            futures = collector.submit_many(["a", "b"])
            for future in futures:
                with pytest.raises(RuntimeError, match="index on fire"):
                    await future
            assert collector.inflight == 0
            assert collector.stats.trips_failed == 2
            await collector.drain_and_stop()
            executor.shutdown()

        asyncio.run(main())

    def test_max_batch_splits_rounds(self):
        async def main():
            db = _FakeDB()
            collector, executor = _collector(db, max_batch=2, max_inflight=8)
            collector.start()
            futures = collector.submit_many(["a", "b", "c", "d", "e"])
            await asyncio.gather(*futures)
            await collector.drain_and_stop()
            executor.shutdown()
            assert all(size <= 2 for size in db.calls)
            assert sum(db.calls) == 5

        asyncio.run(main())


# --------------------------------------------------------------------- #
# Stats plumbing + client error mapping
# --------------------------------------------------------------------- #


class TestStats:
    def test_latency_ring_is_bounded(self):
        ring = LatencyRing(window=4)
        for i in range(100):
            ring.record(i / 1000.0)
        snap = ring.snapshot_ms()
        assert snap["count"] == 100  # total observed
        assert ring.percentile(0.5) >= 0.096  # window keeps the tail

    def test_latency_ring_empty(self):
        snap = LatencyRing(window=4).snapshot_ms()
        assert snap == {
            "count": 0, "p50_ms": None, "p99_ms": None, "mean_ms": None,
        }

    def test_snapshot_shape_and_hit_rate(self):
        stats = ServerStats(latency_window=8)
        snap = stats.snapshot(queue_depth=3)
        assert snap["queue"]["depth"] == 3
        assert snap["rounds"]["dedup_hit_rate"] == 0.0
        for key in ("uptime_s", "connections", "requests", "latency",
                    "clients"):
            assert key in snap

    def test_client_folding_is_bounded(self):
        stats = ServerStats(latency_window=8)
        for i in range(stats.MAX_CLIENTS + 10):
            stats.client(f"10.0.{i // 256}.{i % 256}").requests += 1
        assert len(stats.clients) <= stats.MAX_CLIENTS + 1
        assert "other" in stats.clients


class TestClientErrorMapping:
    def test_429_maps_to_admission_error_with_hint(self):
        error = _error_from_body(
            429,
            {"error": {"type": "AdmissionError", "message": "full",
                       "retry_after_s": 0.125}},
        )
        assert isinstance(error, AdmissionError)
        assert error.retry_after_s == pytest.approx(0.125)

    def test_named_types_resolve_against_the_taxonomy(self):
        from repro.errors import RequestValidationError

        error = _error_from_body(
            400,
            {"error": {"type": "RequestValidationError",
                       "message": "bad path"}},
        )
        assert isinstance(error, RequestValidationError)

    def test_unknown_type_falls_back_to_server_error(self):
        error = _error_from_body(
            500, {"error": {"type": "Nonsense", "message": "boom"}}
        )
        assert isinstance(error, ServerError)
        assert "boom" in str(error)

    def test_undecodable_payload_falls_back(self):
        assert isinstance(_error_from_body(500, None), ServerError)
