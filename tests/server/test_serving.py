"""Integration tests for the HTTP serving tier (ISSUE 8 tentpole).

The contracts enforced over real sockets:

1. **Bit-identity** — N concurrent HTTP clients receive byte-identical
   histograms to sequential in-process ``query`` calls.
2. **Shared rounds** — requests arriving within one collection window
   land in one ``query_many`` dedup round (``/stats`` shows hits).
3. **Backpressure** — trips over the admission bound get a fast 429 +
   ``Retry-After`` and never queue; the queue stays bounded.
4. **Graceful drain** — shutdown answers every admitted trip before the
   server stops.
5. **Typed errors** — malformed JSON / invalid TripRequests are HTTP
   400 carrying the wire-form error body, never a 500.
6. **Liveness off the query path** — ``/healthz``/``/stats`` respond
   while every executor worker is saturated.
"""

import http.client
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import EngineConfig, TripRequest, open_db
from repro.core.intervals import PeriodicInterval
from repro.errors import AdmissionError, RequestValidationError
from repro.server import BackgroundServer, ServerConfig, ServingClient


@pytest.fixture(scope="module")
def world():
    from repro import SNTIndex, generate_dataset

    dataset = generate_dataset("tiny", seed=0)
    index = SNTIndex.build(
        dataset.trajectories, dataset.network.alphabet_size
    )
    trips = [tr for tr in dataset.trajectories if len(tr) >= 6]
    return dataset, index, trips


def requests_for(trips, count):
    return [
        TripRequest(
            path=trip.path,
            interval=PeriodicInterval.around(trip.start_time, 900),
            beta=10,
            exclude_ids=(trip.traj_id,),
        )
        for trip in trips[:count]
    ]


def open_session(world, **config_kwargs):
    dataset, index, _ = world
    config_kwargs.setdefault("dedup_subqueries", True)
    return open_db(
        index, network=dataset.network, config=EngineConfig(**config_kwargs)
    )


def serialised(result):
    """The answer's wire form, canonicalised — byte-identity of the
    histogram, every sub-query outcome, and the echoed request.

    Execution accounting (``elapsed_s``, scan/cache counters) is
    excluded: a shared dedup round *should* report fewer scans than the
    same trips run sequentially."""
    payload = result.to_dict()
    for accounting in ("elapsed_s", "n_index_scans", "n_cache_hits",
                       "n_estimator_skips"):
        payload.pop(accounting, None)
    return json.dumps(payload, sort_keys=True)


class _GatedDB:
    """Wraps a session so rounds block until the test releases them —
    deterministic saturation for admission/drain/liveness tests."""

    def __init__(self, db):
        self._db = db
        self.entered = threading.Event()
        self.release = threading.Event()

    def query_many_with_stats(self, requests):
        self.entered.set()
        assert self.release.wait(timeout=30), "test never released the gate"
        return self._db.query_many_with_stats(requests)


def _raw_post(port, path, body, timeout=10):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        connection.request(
            "POST", path, body=body,
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read() or b"null")
    finally:
        connection.close()


# --------------------------------------------------------------------- #
# 1. Bit-identity under concurrency
# --------------------------------------------------------------------- #


def test_concurrent_clients_match_sequential_query(world):
    db = open_session(world)
    requests = requests_for(world[2], 6)
    expected = [serialised(db.query(request)) for request in requests]

    with BackgroundServer(db, ServerConfig(port=0)) as background:

        def fetch(request):
            with ServingClient(port=background.port) as client:
                return serialised(client.query(request))

        with ThreadPoolExecutor(max_workers=6) as pool:
            served = list(pool.map(fetch, requests))

    assert served == expected


def test_batch_endpoint_matches_query_many(world):
    db = open_session(world)
    requests = requests_for(world[2], 5)
    expected = [serialised(r) for r in db.query_many(requests)]
    with BackgroundServer(db, ServerConfig(port=0)) as background:
        with ServingClient(port=background.port) as client:
            served = [serialised(r) for r in client.query_batch(requests)]
            assert client.query_batch([]) == []
    assert served == expected


# --------------------------------------------------------------------- #
# 2. Requests within one window share dedup rounds
# --------------------------------------------------------------------- #


def test_concurrent_connections_share_dedup_rounds(world):
    # Cache off: any sub-query work absorbed can only come from
    # round-sharing, which is exactly what the assertion targets.
    db = open_session(world, cache_enabled=False)
    request = requests_for(world[2], 1)[0]
    n_clients = 4
    barrier = threading.Barrier(n_clients)
    config = ServerConfig(port=0, window_s=0.5, max_batch=64)

    with BackgroundServer(db, config) as background:

        def fire(_):
            with ServingClient(port=background.port) as client:
                barrier.wait(timeout=10)
                return serialised(client.query(request))

        with ThreadPoolExecutor(max_workers=n_clients) as pool:
            answers = list(pool.map(fire, range(n_clients)))
        with ServingClient(port=background.port) as client:
            stats = client.stats()

    assert len(set(answers)) == 1  # identical trips, identical answers
    rounds = stats["rounds"]
    # The four identical trips arrived within one 500 ms window, so the
    # round planned 4x the unique sub-queries and scanned each once.
    assert rounds["scans_saved"] > 0
    assert rounds["dedup_hit_rate"] > 0
    assert rounds["count"] < n_clients
    assert stats["requests"]["trips_answered"] == n_clients


# --------------------------------------------------------------------- #
# 3. Admission control / backpressure + 6. liveness under saturation
# --------------------------------------------------------------------- #


def test_over_admission_is_fast_429_and_queue_stays_bounded(world):
    db = open_session(world)
    gated = _GatedDB(db)
    requests = requests_for(world[2], 4)
    config = ServerConfig(
        port=0, window_s=0.0, max_batch=4, max_inflight=4,
        executor_workers=1, retry_after_s=0.25,
    )
    with BackgroundServer(gated, config) as background:
        results = {}

        def run_batch():
            with ServingClient(port=background.port) as client:
                results["batch"] = [
                    serialised(r)
                    for r in client.query_batch(requests[:3])
                ]

        def run_single():
            with ServingClient(port=background.port) as client:
                results["single"] = serialised(client.query(requests[3]))

        batch_thread = threading.Thread(target=run_batch)
        batch_thread.start()
        assert gated.entered.wait(timeout=10)  # round of 3 is executing

        single_thread = threading.Thread(target=run_single)
        single_thread.start()

        probe = ServingClient(port=background.port)
        try:
            # Wait until the 4th trip is admitted (inflight == limit).
            for _ in range(200):
                if probe.healthz()["inflight"] == 4:
                    break
                import time

                time.sleep(0.01)
            # /healthz and /stats answer while the only executor worker
            # is blocked — they never touch the collector.
            health = probe.healthz()
            assert health["status"] == "ok"
            assert health["inflight"] == 4
            assert probe.stats()["queue"]["depth"] == 4

            # The 5th trip cannot be admitted: fast 429, typed + hinted.
            with pytest.raises(AdmissionError) as info:
                probe.query(requests[0])
            assert info.value.retry_after_s == pytest.approx(0.25)

            # The raw response carries the HTTP Retry-After header too.
            status, payload = _raw_post(
                background.port, "/v1/query",
                json.dumps(requests[0].to_dict()).encode(),
            )
            assert status == 429
            assert payload["error"]["type"] == "AdmissionError"
        finally:
            probe.close()
            gated.release.set()
        batch_thread.join(timeout=30)
        single_thread.join(timeout=30)

        with ServingClient(port=background.port) as client:
            stats = client.stats()

    # Everyone admitted was answered; the rejected trips never queued.
    assert len(results["batch"]) == 3
    assert results["single"] == serialised(db.query(requests[3]))
    assert stats["requests"]["rejected"] == 2
    assert stats["queue"]["peak"] <= config.max_inflight
    assert stats["queue"]["depth"] == 0


def test_retry_after_header_is_integer_ceiled(world):
    db = open_session(world)
    gated = _GatedDB(db)
    config = ServerConfig(
        port=0, window_s=0.0, max_batch=1, max_inflight=1,
        executor_workers=1, retry_after_s=0.25,
    )
    request = requests_for(world[2], 1)[0]
    body = json.dumps(request.to_dict()).encode()
    with BackgroundServer(gated, config) as background:
        blocker = threading.Thread(
            target=lambda: _raw_post(background.port, "/v1/query", body, 30)
        )
        blocker.start()
        assert gated.entered.wait(timeout=10)
        connection = http.client.HTTPConnection(
            "127.0.0.1", background.port, timeout=10
        )
        try:
            connection.request(
                "POST", "/v1/query", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 429
            assert response.getheader("Retry-After") == "1"
            assert payload["error"]["retry_after_s"] == pytest.approx(0.25)
        finally:
            connection.close()
            gated.release.set()
        blocker.join(timeout=30)


# --------------------------------------------------------------------- #
# 4. Graceful shutdown drains in-flight requests
# --------------------------------------------------------------------- #


def test_graceful_shutdown_drains_inflight_rounds(world):
    db = open_session(world)
    gated = _GatedDB(db)
    requests = requests_for(world[2], 3)
    expected = [serialised(r) for r in db.query_many(requests)]
    background = BackgroundServer(
        gated, ServerConfig(port=0, window_s=0.0, executor_workers=1)
    )
    results = {}

    def run_batch():
        with ServingClient(port=background.port) as client:
            results["batch"] = [
                serialised(r) for r in client.query_batch(requests)
            ]

    client_thread = threading.Thread(target=run_batch)
    client_thread.start()
    assert gated.entered.wait(timeout=10)  # the round is in flight

    stopper = threading.Thread(target=background.stop)
    stopper.start()
    # Shutdown must be draining, not dropping: the round is still gated.
    stopper.join(timeout=0.3)
    assert stopper.is_alive()

    gated.release.set()
    stopper.join(timeout=30)
    client_thread.join(timeout=30)
    assert not stopper.is_alive()
    assert results["batch"] == expected


# --------------------------------------------------------------------- #
# 5. Typed 400s for bad input (never a 500)
# --------------------------------------------------------------------- #


class TestBadInput:
    @pytest.fixture(scope="class")
    def served(self, world):
        db = open_session(world)
        with BackgroundServer(db, ServerConfig(port=0)) as background:
            yield background

    def test_malformed_json_is_400_wire_form(self, served):
        status, payload = _raw_post(served.port, "/v1/query", b"{not json")
        assert status == 400
        assert payload["error"]["type"] == "RequestValidationError"
        assert "JSON" in payload["error"]["message"]

    def test_invalid_trip_request_is_400_wire_form(self, served):
        status, payload = _raw_post(
            served.port, "/v1/query", json.dumps({"path": []}).encode()
        )
        assert status == 400
        assert payload["error"]["type"] == "RequestValidationError"

    def test_batch_reports_offending_position(self, served, world):
        valid = requests_for(world[2], 1)[0].to_dict()
        body = json.dumps(
            {"requests": [valid, {"path": []}]}
        ).encode()
        status, payload = _raw_post(served.port, "/v1/query_batch", body)
        assert status == 400
        assert "requests[1]" in payload["error"]["message"]

    def test_batch_payload_must_be_object_with_requests(self, served):
        status, payload = _raw_post(
            served.port, "/v1/query_batch", json.dumps([1, 2]).encode()
        )
        assert status == 400
        assert payload["error"]["type"] == "RequestValidationError"

    def test_client_raises_typed_validation_error(self, served, world):
        with ServingClient(port=served.port) as client:
            broken = requests_for(world[2], 1)[0].to_dict()
            broken["path"] = []
            with pytest.raises(RequestValidationError):
                client._roundtrip(
                    "POST", "/v1/query", json.dumps(broken).encode()
                )

    def test_unknown_route_is_404(self, served):
        status, payload = _raw_post(served.port, "/nope", b"{}")
        assert status == 404
        assert payload["error"]["type"] == "ServerError"

    def test_wrong_method_is_405(self, served):
        connection = http.client.HTTPConnection(
            "127.0.0.1", served.port, timeout=10
        )
        try:
            connection.request("GET", "/v1/query")
            response = connection.getresponse()
            assert response.status == 405
            assert response.getheader("Allow") == "POST"
            response.read()
        finally:
            connection.close()

    def test_invalid_requests_are_counted_not_crashed(self, served):
        with ServingClient(port=served.port) as client:
            stats = client.stats()
        assert stats["requests"]["invalid"] >= 3
        assert stats["requests"]["trips_failed"] == 0


# --------------------------------------------------------------------- #
# Stats surface
# --------------------------------------------------------------------- #


def test_stats_surface_tracks_clients_and_latency(world):
    db = open_session(world)
    requests = requests_for(world[2], 3)
    with BackgroundServer(db, ServerConfig(port=0)) as background:
        with ServingClient(port=background.port) as client:
            client.query_batch(requests)
            stats = client.stats()
    assert stats["requests"]["trips_answered"] == 3
    assert stats["latency"]["count"] == 3
    assert stats["latency"]["p50_ms"] > 0
    assert stats["latency"]["p99_ms"] >= stats["latency"]["p50_ms"]
    (client_stats,) = stats["clients"].values()
    assert client_stats["trips"] == 3
    assert stats["connections"] >= 1
