"""Unit tests for the service-layer LRU caches."""

import threading

import pytest

from repro.service import LRUCache, SubQueryCache


class TestLRUCache:
    def test_get_put_roundtrip(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now oldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # overwrite refreshes recency
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_unbounded_cache_never_evicts(self):
        cache = LRUCache(None)
        for i in range(1000):
            cache.put(i, i)
        assert len(cache) == 1000
        assert cache.stats().evictions == 0

    def test_none_values_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(4).put("a", None)

    def test_max_entries_is_public(self):
        assert LRUCache(7).max_entries == 7
        assert LRUCache(None).max_entries is None

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_stats_counters(self):
        cache = LRUCache(1)
        cache.get("a")  # miss
        cache.put("a", 1)
        cache.get("a")  # hit
        cache.put("b", 2)  # evicts "a"
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.evictions) == (1, 1, 1)
        assert stats.size == 1
        assert stats.max_size == 1
        assert stats.hit_rate == 0.5

    def test_concurrent_access_is_consistent(self):
        cache = LRUCache(128)
        errors = []

        def worker(base: int) -> None:
            try:
                for i in range(500):
                    key = (base + i) % 64
                    cache.put(key, key)
                    value = cache.get(key)
                    assert value is None or value == key
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors


class TestSubQueryCache:
    def test_sections_are_independent(self):
        cache = SubQueryCache(max_ranges=2, max_results=2, max_histograms=2)
        cache.put_ranges((1, 2), [(0, 0, 3)])
        assert cache.get_ranges((1, 2)) == [(0, 0, 3)]
        assert cache.get_result(("anything",)) is None
        stats = cache.stats()
        assert stats.ranges.size == 1
        assert stats.results.size == 0

    def test_put_result_freezes_values(self):
        import numpy as np

        from repro.sntindex.procedures import TravelTimeResult

        cache = SubQueryCache()
        result = TravelTimeResult(np.asarray([1.0, 2.0]), 2)
        cache.put_result("key", result)
        cached = cache.get_result("key")
        assert not cached.values.flags.writeable

    def test_clear_and_summary(self):
        cache = SubQueryCache()
        cache.put_ranges((1,), [(0, 0, 1)])
        cache.clear()
        assert cache.get_ranges((1,)) is None
        assert "ranges" in cache.stats().summary()
