"""Cache/batch equivalence: the fast paths are bit-identical to Procedure 6.

The serving layer (``TravelTimeDB.query_many`` over the shared
``SubQueryCache``) must return *exactly* what a sequential uncached
engine returns — same histograms, same per-sub-query values, same point
estimates — across partitioners, splitters, and estimator
configurations.  The only permitted difference is accounting: cached
runs trade index scans for cache hits, and the sum
``n_index_scans + n_cache_hits`` is invariant.
"""

import numpy as np
import pytest

from repro import (
    CardinalityEstimator,
    EngineConfig,
    QueryEngine,
    SubQueryCache,
    TravelTimeDB,
    TripRequest,
)
from repro.experiments import build_workload
from repro.service import TravelTimeService

from tests.typed_api import as_requests, run_trip

PARTITIONERS = ("pi_1", "pi_Z", "pi_ZC")
SPLITTERS = ("regular", "longest_prefix")
N_QUERIES = 6


@pytest.fixture(scope="module")
def workload():
    return build_workload("tiny", seed=0)


@pytest.fixture(scope="module")
def jobs(workload):
    specs = workload.queries[:N_QUERIES]
    queries = [
        spec.to_query("temporal", 900, workload.t_max, 10) for spec in specs
    ]
    exclude_ids = [(spec.traj_id,) for spec in specs]
    return queries, exclude_ids


def assert_equivalent(sequential, serviced):
    """Histograms, outcomes, and scan-adjusted stats must match exactly."""
    assert len(sequential) == len(serviced)
    for expected, actual in zip(sequential, serviced):
        assert actual.histogram == expected.histogram
        assert actual.histogram.as_dict() == expected.histogram.as_dict()
        assert actual.estimated_mean == expected.estimated_mean
        assert actual.n_estimator_skips == expected.n_estimator_skips
        # Cached runs replace scans with hits one for one.
        assert expected.n_cache_hits == 0
        assert (
            actual.n_index_scans + actual.n_cache_hits
            == expected.n_index_scans
        )
        assert len(actual.outcomes) == len(expected.outcomes)
        for out_expected, out_actual in zip(
            expected.outcomes, actual.outcomes
        ):
            assert out_actual.query == out_expected.query
            assert np.array_equal(out_actual.values, out_expected.values)
            assert out_actual.histogram == out_expected.histogram
            assert out_actual.from_fallback == out_expected.from_fallback


@pytest.mark.parametrize("partitioner", PARTITIONERS)
@pytest.mark.parametrize("splitter", SPLITTERS)
def test_batched_cached_equals_sequential(
    workload, jobs, partitioner, splitter
):
    queries, exclude_ids = jobs
    config = EngineConfig(partitioner=partitioner, splitter=splitter)
    # A bare QueryEngine is uncached (its cache parameter defaults to
    # per-trip); config.cache_enabled only matters to session layers.
    engine = QueryEngine(workload.index, workload.network, config)
    sequential = [
        run_trip(engine, query, exclude_ids=excluded)
        for query, excluded in zip(queries, exclude_ids)
    ]

    db = TravelTimeDB(workload.index, workload.network, config=config)
    requests = as_requests(queries, exclude_ids)
    # Cold pass single-threaded: the exact scans-vs-hits accounting is
    # only guaranteed without concurrent same-key misses.  The warm pass
    # fans out — every retrieval is a hit, so the accounting is exact
    # again and the fan-out path is exercised.
    cold = db.query_many(requests)
    warm = db.query_many(requests, n_workers=3)
    assert_equivalent(sequential, cold)
    assert_equivalent(sequential, warm)
    # The warm pass answers the whole batch from cache.
    assert sum(result.n_index_scans for result in warm) == 0
    assert sum(result.n_cache_hits for result in warm) == sum(
        result.n_index_scans for result in sequential
    )


@pytest.mark.parametrize("estimator_mode", (None, "CSS-Fast", "CSS-Acc"))
def test_equivalence_with_cardinality_estimator(
    workload, jobs, estimator_mode
):
    queries, exclude_ids = jobs
    estimator = (
        CardinalityEstimator(workload.index, mode=estimator_mode)
        if estimator_mode is not None
        else None
    )
    engine = QueryEngine(
        workload.index, workload.network, estimator=estimator
    )
    sequential = [
        run_trip(engine, query, exclude_ids=excluded)
        for query, excluded in zip(queries, exclude_ids)
    ]
    config = EngineConfig(estimator_mode=estimator_mode)
    db = TravelTimeDB(workload.index, workload.network, config=config)
    requests = as_requests(queries, exclude_ids)
    cold = db.query_many(requests)
    warm = db.query_many(requests)
    assert_equivalent(sequential, cold)
    assert_equivalent(sequential, warm)
    if estimator_mode is not None:
        # The estimator keeps firing on cached runs (its skip accounting
        # is part of the equivalence contract, not cached away).
        assert sum(r.n_estimator_skips for r in warm) == sum(
            r.n_estimator_skips for r in sequential
        )


def test_results_preserve_submission_order(workload, jobs):
    queries, exclude_ids = jobs
    db = TravelTimeDB(workload.index, workload.network)
    requests = as_requests(queries, exclude_ids)
    single = db.query_many(requests, n_workers=1)
    fanned = db.query_many(requests, n_workers=4)
    for a, b in zip(single, fanned):
        assert a.histogram == b.histogram
        assert [o.query.path for o in a.outcomes] == [
            o.query.path for o in b.outcomes
        ]


def test_exclude_ids_are_part_of_the_cache_key(workload, jobs):
    """Different exclusions must never share a cached result."""
    queries, exclude_ids = jobs
    db = TravelTimeDB(workload.index, workload.network)
    engine = QueryEngine(workload.index, workload.network)
    excluded = db.query_many(as_requests(queries, exclude_ids))
    included = db.query_many(as_requests(queries))  # no exclusions, warm
    for query, excl, with_excl, without_excl in zip(
        queries, exclude_ids, excluded, included
    ):
        assert with_excl.histogram == run_trip(
            engine, query, exclude_ids=excl
        ).histogram
        assert without_excl.histogram == run_trip(engine, query).histogram


def test_cache_disabled_service_matches_too(workload, jobs):
    queries, exclude_ids = jobs
    engine = QueryEngine(workload.index, workload.network)
    sequential = [
        run_trip(engine, query, exclude_ids=excluded)
        for query, excluded in zip(queries, exclude_ids)
    ]
    db = TravelTimeDB(workload.index, workload.network, cache=None)
    results = db.query_many(as_requests(queries, exclude_ids), n_workers=2)
    assert db.cache_stats() is None
    for expected, actual in zip(sequential, results):
        assert actual.histogram == expected.histogram
        assert actual.n_cache_hits == 0
        assert actual.n_index_scans == expected.n_index_scans


def test_shared_cache_across_services(workload, jobs):
    """One SubQueryCache can back several service instances."""
    queries, exclude_ids = jobs
    shared = SubQueryCache()
    first = TravelTimeDB(workload.index, workload.network, cache=shared)
    second = TravelTimeDB(workload.index, workload.network, cache=shared)
    requests = as_requests(queries, exclude_ids)
    first.query_many(requests)
    warm = second.query_many(requests)
    assert sum(result.n_index_scans for result in warm) == 0


def test_shared_cache_rejects_different_index_or_network(workload):
    """Cache keys carry no data identity, so sharing across another
    index *or network* must fail loudly instead of returning wrong
    answers (fallback results embed the network's estimateTT)."""
    from repro.experiments import build_workload

    shared = SubQueryCache()
    TravelTimeService(workload.index, workload.network, cache=shared)
    other = build_workload("tiny", seed=1)
    with pytest.raises(ValueError, match="bound to a different"):
        TravelTimeService(other.index, other.network, cache=shared)
    with pytest.raises(ValueError, match="bound to a different"):
        TravelTimeService(workload.index, other.network, cache=shared)
    # The binding is permanent — clear() empties but does not unbind
    # (an in-flight trip could repopulate after the clear).
    shared.clear()
    with pytest.raises(ValueError, match="bound to a different"):
        TravelTimeService(other.index, other.network, cache=shared)
    # Same pair keeps working.
    TravelTimeService(workload.index, workload.network, cache=shared)


def test_engine_rejects_mismatched_index_network_pair(workload):
    """A mismatched pair would answer silently wrong (unknown edges get
    empty ISA ranges + the wrong network's fallback); the engine — and
    therefore TravelTimeService/from_saved — must refuse it up front."""
    from repro import Edge, QueryEngine, RoadCategory
    from repro.errors import QueryError
    from repro.network import RoadNetwork, ZoneType

    foreign = RoadNetwork()
    foreign.add_vertex(1, (0.0, 0.0))
    foreign.add_vertex(2, (1.0, 0.0))
    foreign.add_edge(
        Edge(
            workload.index.alphabet_size + 5,
            1,
            2,
            RoadCategory.PRIMARY,
            ZoneType.CITY,
            100.0,
            50.0,
        )
    )
    with pytest.raises(QueryError, match="alphabet"):
        QueryEngine(workload.index, foreign)
    with pytest.raises(QueryError, match="alphabet"):
        TravelTimeService(workload.index, foreign)


def test_invalid_cache_and_workers_raise(workload):
    with pytest.raises(ValueError):
        TravelTimeService(workload.index, workload.network, cache="bogus")
    with pytest.raises(ValueError):
        TravelTimeService(workload.index, workload.network, n_workers=0)
