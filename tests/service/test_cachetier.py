"""The cross-process shared cache tier (ISSUE 4).

Three contracts are enforced here:

1. **Protocol** — ``SubQueryCache`` and ``SharedCacheTier`` both satisfy
   ``CacheBackend``; LRU eviction and hit/miss accounting are observable
   through the protocol alone, whichever backend is plugged in.
2. **Bit-identity** — answers with the shared tier on are exactly the
   uncached answers, across thread and fork fan-out, and across a second
   *fresh* handle (a new process's view of the store).
3. **Epoch invalidation across processes** — entries written before an
   ``append()`` are never served after the epoch bump, even by handles
   (or forked workers) that never observed the append call.
"""

import numpy as np
import pytest

from repro import (
    EngineConfig,
    QueryEngine,
    ShardedSNTIndex,
    StrictPathQuery,
    SubQueryCache,
    TrajectorySet,
    TravelTimeDB,
    TripRequest,
    generate_dataset,
)
from repro.core.intervals import FixedInterval, PeriodicInterval
from repro.errors import ConfigurationError
from repro.forkpool import fork_map
from repro.service import CacheBackend, SharedCacheTier, resolve_cache_backend
from repro.sntindex.procedures import TravelTimeResult

PARTITION_DAYS = 7


@pytest.fixture(scope="module")
def world():
    dataset = generate_dataset("tiny", seed=0)
    from repro import SNTIndex

    index = SNTIndex.build(
        dataset.trajectories, dataset.network.alphabet_size
    )
    trips = [tr for tr in dataset.trajectories if len(tr) >= 6]
    return dataset, index, trips


def requests_for(trips, count=6):
    return [
        TripRequest(
            path=trip.path,
            interval=PeriodicInterval.around(trip.start_time, 900),
            beta=10,
            exclude_ids=(trip.traj_id,),
        )
        for trip in trips[:count]
    ]


def assert_bit_identical(expected, actual):
    assert actual.histogram == expected.histogram
    assert actual.histogram.as_dict() == expected.histogram.as_dict()
    assert actual.estimated_mean == expected.estimated_mean
    assert len(actual.outcomes) == len(expected.outcomes)
    for out_expected, out_actual in zip(expected.outcomes, actual.outcomes):
        assert out_actual.query == out_expected.query
        assert np.array_equal(out_actual.values, out_expected.values)
        assert out_actual.histogram == out_expected.histogram
        assert out_actual.from_fallback == out_expected.from_fallback


# --------------------------------------------------------------------- #
# Protocol conformance + LRU/stat accounting through the protocol
# --------------------------------------------------------------------- #


def backend_factories(tmp_path):
    return {
        "memory": lambda: SubQueryCache(
            max_ranges=2, max_results=2, max_histograms=2
        ),
        "shared": lambda: SharedCacheTier(
            tmp_path / "tier", config=EngineConfig(), max_entries=2
        ),
    }


@pytest.mark.parametrize("kind", ("memory", "shared"))
def test_backends_satisfy_protocol(kind, tmp_path):
    backend = backend_factories(tmp_path)[kind]()
    assert isinstance(backend, CacheBackend)


@pytest.mark.parametrize("kind", ("memory", "shared"))
def test_lru_eviction_and_stats_through_protocol(kind, tmp_path):
    """Eviction and hit/miss counters behave identically through the
    CacheBackend protocol, whichever implementation is plugged in."""
    backend: CacheBackend = backend_factories(tmp_path)[kind]()
    paths = [(1, 2), (3, 4), (5, 6)]
    for i, path in enumerate(paths):
        assert backend.get_ranges(path) is None  # miss, counted
        backend.put_ranges(path, [(0, i, i + 1)])
    stats = backend.stats()
    assert stats.ranges.misses == 3
    assert stats.ranges.max_size == 2
    assert stats.ranges.size == 2  # in-memory layer is LRU-bounded
    assert stats.ranges.evictions == 1

    # The most recent entries are hits in both backends.
    assert backend.get_ranges((5, 6)) == [(0, 2, 3)]
    assert backend.get_ranges((3, 4)) == [(0, 1, 2)]
    stats = backend.stats()
    assert stats.ranges.hits == 2
    if kind == "memory":
        # The evicted entry is gone for good in-process...
        assert backend.get_ranges((1, 2)) is None
    else:
        # ... but the shared store still holds it (store is unbounded,
        # epoch-collected): an L1 eviction is not a data loss.
        assert backend.get_ranges((1, 2)) == [(0, 0, 1)]
        assert backend.tier_stats().shared_hits["ranges"] >= 1

    backend.clear()
    assert backend.get_ranges((3, 4)) is None


def test_result_wire_form_round_trips_bit_identically():
    values = np.asarray([1.5, 2.25, 1e-7, 12345.6789], dtype=np.float64)
    result = TravelTimeResult(
        values=values, n_matched=7, from_fallback=False, insufficient=False
    )
    wire = result.to_wire()
    # The wire payload carries plain Python floats (values.tolist()), so
    # json round-trips them through repr without narrowing.
    assert all(type(v) is float for v in wire["values"])
    assert wire["values"] == [float(v) for v in values]
    back = TravelTimeResult.from_wire(wire)
    assert np.array_equal(back.values, result.values)
    assert back.values.dtype == np.float64
    assert not back.values.flags.writeable  # cached values are immutable
    assert back.n_matched == 7
    assert (back.from_fallback, back.insufficient) == (False, False)


# --------------------------------------------------------------------- #
# resolve_cache_backend / config spec
# --------------------------------------------------------------------- #


def test_cache_spec_resolution(world, tmp_path):
    dataset, index, _ = world
    assert resolve_cache_backend(EngineConfig(cache="off"), index) is None
    assert (
        resolve_cache_backend(
            EngineConfig(cache_enabled=False), index
        )
        is None
    )
    memory = resolve_cache_backend(EngineConfig(cache="memory"), index)
    assert isinstance(memory, SubQueryCache)
    tier = resolve_cache_backend(
        EngineConfig(cache=f"shared:{tmp_path / 'tier'}"), index
    )
    assert isinstance(tier, SharedCacheTier)
    # 'shared' without a disk-loaded index has no directory to live in.
    with pytest.raises(ConfigurationError, match="not loaded from disk"):
        resolve_cache_backend(EngineConfig(cache="shared"), index)


def test_cache_spec_validation():
    with pytest.raises(ConfigurationError, match="cache must be"):
        EngineConfig(cache="bogus")
    with pytest.raises(ConfigurationError, match="cache must be"):
        EngineConfig(cache="shared:")
    with pytest.raises(ConfigurationError, match="beta_policy"):
        EngineConfig(cache="shared", beta_policy=lambda path, beta: beta)


def test_cache_identity_excludes_serving_knobs():
    base = EngineConfig()
    assert base.cache_identity() == base.replace(
        n_workers=4, cache_entries=16
    ).cache_identity()
    assert (
        base.cache_identity()
        != base.replace(bucket_width_s=42.0).cache_identity()
    )
    with pytest.raises(ConfigurationError, match="beta_policy"):
        EngineConfig(beta_policy=lambda path, beta: beta).cache_identity()


def test_differently_configured_sessions_never_share_entries(
    world, tmp_path
):
    """Same directory, different EngineConfig identity: zero shared hits."""
    dataset, index, trips = world
    requests = requests_for(trips, 3)
    spec = f"shared:{tmp_path / 'tier'}"
    db_a = TravelTimeDB(
        index, dataset.network, config=EngineConfig(cache=spec)
    )
    db_a.query_many(requests)
    db_b = TravelTimeDB(
        index,
        dataset.network,
        config=EngineConfig(cache=spec, bucket_width_s=60.0),
    )
    results = db_b.query_many(requests)
    assert sum(r.n_cache_hits for r in results) == 0
    tier = db_b.engine.cache
    assert sum(tier.tier_stats().shared_hits.values()) == 0


def test_tier_rejects_store_of_different_world(world, tmp_path):
    dataset, index, trips = world
    other = generate_dataset("tiny", seed=1)
    from repro import SNTIndex

    other_index = SNTIndex.build(
        other.trajectories, other.network.alphabet_size
    )
    spec = EngineConfig(cache=f"shared:{tmp_path / 'tier'}")
    TravelTimeDB(index, dataset.network, config=spec).query_many(
        requests_for(trips, 1)
    )
    with pytest.raises(ValueError, match="fingerprint"):
        TravelTimeDB(other_index, other.network, config=spec).query_many(
            requests_for([tr for tr in other.trajectories if len(tr) >= 6], 1)
        )


# --------------------------------------------------------------------- #
# Bit-identity with the tier on/off, across thread and fork fan-out
# --------------------------------------------------------------------- #


def test_tier_answers_bit_identical_across_fanout_modes(world, tmp_path):
    dataset, index, trips = world
    requests = requests_for(trips, 6)
    uncached = TravelTimeDB(index, dataset.network, cache=None)
    expected = uncached.query_many(requests)

    spec = EngineConfig(cache=f"shared:{tmp_path / 'tier'}")
    db = TravelTimeDB(index, dataset.network, config=spec)
    for results in (
        db.query_many(requests),                      # cold, sequential
        db.query_many(requests, n_workers=3),         # warm, threads
        db.query_many(
            requests, n_workers=2, use_processes=True
        ),                                            # warm, forked
    ):
        for want, got in zip(expected, results):
            assert_bit_identical(want, got)

    # A second fresh handle (another process's view of the store)
    # answers the whole workload from shared hits, still bit-identical.
    db2 = TravelTimeDB(index, dataset.network, config=spec)
    warm = db2.query_many(requests)
    assert sum(r.n_index_scans for r in warm) == 0
    for want, got in zip(expected, warm):
        assert_bit_identical(want, got)


def test_forked_workers_write_through_the_shared_tier(world, tmp_path):
    """Fork fan-out must open the tier (not an empty spawn): entries a
    worker computes are visible to fresh sessions afterwards."""
    dataset, index, trips = world
    requests = requests_for(trips, 4)
    spec = EngineConfig(cache=f"shared:{tmp_path / 'tier'}")
    db = TravelTimeDB(index, dataset.network, config=spec)
    db.query_many(requests, n_workers=2, use_processes=True)

    fresh = TravelTimeDB(index, dataset.network, config=spec)
    warm = fresh.query_many(requests)
    assert sum(r.n_index_scans for r in warm) == 0
    assert sum(r.n_cache_hits for r in warm) > 0


def test_spawn_for_worker_shares_store_without_parent_state(tmp_path):
    tier = SharedCacheTier(tmp_path / "tier", config=EngineConfig())
    tier.put_ranges((1, 2), [(0, 0, 5)])
    worker_view = tier.spawn_for_worker()
    assert worker_view is not tier
    assert worker_view.get_ranges((1, 2)) == [(0, 0, 5)]
    # The in-process SubQueryCache spawns empty instead.
    cache = SubQueryCache(max_ranges=7)
    spawned = cache.spawn_for_worker()
    assert spawned.stats().ranges.size == 0
    assert spawned.stats().ranges.max_size == 7


# --------------------------------------------------------------------- #
# Epoch invalidation observed across processes
# --------------------------------------------------------------------- #


def _split_for_append(dataset):
    """Older-bucket trajectories as the base corpus, the newest partition
    bucket as the appendable tail (mirrors the sharded-equivalence
    suite's split: buckets are anchored at the corpus t_min)."""
    trajectories = list(dataset.trajectories)
    t_min = min(tr.start_time for tr in trajectories)
    window = PARTITION_DAYS * 86_400
    buckets = sorted(
        {(tr.start_time - t_min) // window for tr in trajectories}
    )
    cut = buckets[-1]
    base = [
        tr for tr in trajectories if (tr.start_time - t_min) // window < cut
    ]
    tail = [
        tr for tr in trajectories if (tr.start_time - t_min) // window == cut
    ]
    return base, tail


def test_rebuilt_index_over_changed_data_never_shares(world, tmp_path):
    """An in-memory rebuild over *changed* trajectory data (e.g. the CLI
    re-building after the world file was edited) restarts at epoch 0
    with no token — the content-derived base lineage must still keep it
    apart from the previous build's entries."""
    dataset, index, trips = world
    from repro import SNTIndex, TrajectorySet

    shrunk = SNTIndex.build(
        TrajectorySet(list(dataset.trajectories)[:-20]),
        dataset.network.alphabet_size,
    )
    assert shrunk.epoch == index.epoch == 0  # indistinguishable by epoch
    requests = requests_for(trips, 3)
    spec = EngineConfig(cache=f"shared:{tmp_path / 'tier'}")
    TravelTimeDB(index, dataset.network, config=spec).query_many(requests)
    results = TravelTimeDB(shrunk, dataset.network, config=spec).query_many(
        requests
    )
    assert sum(r.n_cache_hits for r in results) == 0  # nothing crossed
    expected = TravelTimeDB(shrunk, dataset.network, cache=None).query_many(
        requests
    )
    for want, got in zip(expected, results):
        assert_bit_identical(want, got)


def test_epoch_bump_invalidates_across_handles(world, tmp_path):
    """Two handles onto one store: entries stamped before an epoch bump
    are unreachable afterwards, whichever handle reads."""
    dataset, _, _ = world
    base, tail = _split_for_append(dataset)
    sharded = ShardedSNTIndex.build(
        TrajectorySet(base),
        dataset.network.alphabet_size,
        n_shards=2,
        partition_days=PARTITION_DAYS,
    )
    config = EngineConfig()
    writer = SharedCacheTier(tmp_path / "tier", config=config)
    reader = SharedCacheTier(tmp_path / "tier", config=config)
    writer.bind_index(sharded, dataset.network)
    reader.bind_index(sharded, dataset.network)

    key = ((1, 2), FixedInterval(0, 100), None, None, ())
    writer.put_result(
        key,
        TravelTimeResult(
            values=np.asarray([1.0]), n_matched=1, from_fallback=False
        ),
    )
    assert reader.get_result(key) is not None  # visible across handles

    sharded.append(tail)  # bumps the epoch
    writer.sync_epoch(sharded)
    assert writer.get_result(key) is None  # stale entry unreachable
    # The reader handle syncs independently and must not see it either.
    reader.sync_epoch(sharded)
    assert reader.get_result(key) is None


def test_same_epoch_number_different_appends_never_share(world, tmp_path):
    """Epoch numbers are per-object ordinal counters: two sessions that
    independently append *different* tails to copies of one saved index
    both land on epoch N+1, but must never serve each other's entries
    (the ``epoch_token`` lineage keeps them apart)."""
    dataset, _, _ = world
    base, tail = _split_for_append(dataset)
    built = ShardedSNTIndex.build(
        TrajectorySet(base),
        dataset.network.alphabet_size,
        n_shards=2,
        partition_days=PARTITION_DAYS,
    )
    saved = built.save(tmp_path / "index")
    from repro import load_any_index

    index_a = load_any_index(saved)
    index_b = load_any_index(saved)
    half = len(tail) // 2 or 1
    index_a.append(tail[:half])
    index_b.append(tail)  # a *different* mutation, same epoch number
    assert index_a.epoch == index_b.epoch

    spec = EngineConfig(cache=f"shared:{tmp_path / 'tier'}")
    trips = [tr for tr in base if len(tr) >= 6]
    requests = requests_for(trips, 3)
    db_a = TravelTimeDB(index_a, dataset.network, config=spec)
    db_a.query_many(requests)  # populates the store at (N+1, lineage A)
    db_b = TravelTimeDB(index_b, dataset.network, config=spec)
    results_b = db_b.query_many(requests)
    assert sum(r.n_cache_hits for r in results_b) == 0  # nothing crossed
    expected = TravelTimeDB(index_b, dataset.network, cache=None).query_many(
        requests
    )
    for want, got in zip(expected, results_b):
        assert_bit_identical(want, got)

    # The lineage survives persistence: saving both mutated states and
    # reloading must keep them distinguishable (else two saved states at
    # the same epoch would collide after a cold start).
    reloaded_a = load_any_index(index_a.save(tmp_path / "saved-a"))
    reloaded_b = load_any_index(index_b.save(tmp_path / "saved-b"))
    assert reloaded_a.epoch == reloaded_b.epoch
    assert reloaded_a.epoch_token == index_a.epoch_token
    assert reloaded_b.epoch_token == index_b.epoch_token
    assert reloaded_a.epoch_token != reloaded_b.epoch_token


def test_append_invalidation_observed_by_forked_process(world, tmp_path):
    """End to end: warm the tier, append, and let a *forked worker
    process* answer the same workload — stale shared entries must never
    be served, so the worker's answers equal a fresh uncached engine
    over the appended index."""
    dataset, _, _ = world
    base, tail = _split_for_append(dataset)
    sharded = ShardedSNTIndex.build(
        TrajectorySet(base),
        dataset.network.alphabet_size,
        n_shards=2,
        partition_days=PARTITION_DAYS,
    )
    trips = [tr for tr in base if len(tr) >= 6]
    requests = requests_for(trips, 5)
    spec = EngineConfig(cache=f"shared:{tmp_path / 'tier'}")

    db = TravelTimeDB(sharded, dataset.network, config=spec)
    pre_append = db.query_many(requests)  # warms the shared store
    assert sum(r.n_index_scans for r in pre_append) > 0

    sharded.append(tail)

    def answer_in_child(request):
        # Fresh tier handle in the worker, as a separate serving process
        # (or a fork fan-out worker) would build it.
        child_db = TravelTimeDB(sharded, dataset.network, config=spec)
        return child_db.query(request)

    forked = fork_map(answer_in_child, requests, workers=2)
    uncached = TravelTimeDB(sharded, dataset.network, cache=None)
    expected = uncached.query_many(requests)
    changed = 0
    for want, got, before in zip(expected, forked, pre_append):
        assert_bit_identical(want, got)
        if want.histogram != before.histogram:
            changed += 1
    # The append actually changed some answers — otherwise serving a
    # stale entry would be indistinguishable from a correct one.
    assert changed > 0


# --------------------------------------------------------------------- #
# Lifecycle
# --------------------------------------------------------------------- #


def test_close_keeps_entries_clear_drops_them(world, tmp_path):
    dataset, index, trips = world
    requests = requests_for(trips, 3)
    spec = EngineConfig(cache=f"shared:{tmp_path / 'tier'}")
    with TravelTimeDB(index, dataset.network, config=spec) as db:
        db.query_many(requests)
    # close() ran; the store must still warm the next session.
    db2 = TravelTimeDB(index, dataset.network, config=spec)
    warm = db2.query_many(requests)
    assert sum(r.n_index_scans for r in warm) == 0
    # clear() drops this configuration's entries for good.
    db2.clear_cache()
    db3 = TravelTimeDB(index, dataset.network, config=spec)
    cold = db3.query_many(requests)
    assert sum(r.n_index_scans for r in cold) > 0


def test_tier_binding_rejects_second_index_per_handle(world, tmp_path):
    dataset, index, _ = world
    tier = SharedCacheTier(tmp_path / "tier", config=EngineConfig())
    tier.bind_index(index, dataset.network)
    tier.bind_index(index, dataset.network)  # same pair: fine
    with pytest.raises(ValueError, match="bound to a different"):
        tier.bind_index(index, None)


# --------------------------------------------------------------------- #
# Store-size bound (ISSUE 5: bound the store within an epoch)
# --------------------------------------------------------------------- #


def test_store_bound_evicts_oldest_without_breaking_bit_identity(
    world, tmp_path
):
    """A tiny ``max_store_entries`` forces constant eviction; every
    answer must still be exactly the uncached one — eviction can only
    ever cost a recomputation."""
    dataset, index, trips = world
    requests = requests_for(trips, 6)
    config = EngineConfig()
    reference = TravelTimeDB(
        index, dataset.network, config=config, cache=None
    ).query_many(requests)

    tier = SharedCacheTier(
        tmp_path / "tier",
        config=config,
        max_entries=2,  # small L1 so reads actually exercise the store
        max_store_entries=5,
    )
    db = TravelTimeDB(index, dataset.network, config=config, cache=tier)
    first = db.query_many(requests)
    assert tier.tier_stats().db_entries <= 5
    # Second pass: most entries were evicted, so this mixes store hits
    # with forced recomputations — answers must not change either way.
    second = db.query_many(requests)
    assert tier.tier_stats().db_entries <= 5
    for expected, a, b in zip(reference, first, second):
        assert_bit_identical(expected, a)
        assert_bit_identical(expected, b)


def test_store_bound_survives_worker_spawn_and_epoch_sync(
    world, tmp_path
):
    dataset, index, trips = world
    tier = SharedCacheTier(
        tmp_path / "tier", config=EngineConfig(), max_store_entries=3
    )
    worker = tier.spawn_for_worker()
    assert worker._max_store_entries == 3
    db = TravelTimeDB(index, dataset.network, cache=tier)
    db.query_many(requests_for(trips, 6))
    assert tier.tier_stats().db_entries <= 3
    # sync_epoch's GC path enforces the bound too (no epoch change
    # needed for the invariant to hold afterwards).
    tier.sync_epoch(index)
    assert tier.tier_stats().db_entries <= 3


def test_store_bound_validation_and_config_wiring(world, tmp_path):
    dataset, index, _ = world
    with pytest.raises(ConfigurationError, match="max_store_entries"):
        SharedCacheTier(
            tmp_path / "t1", config=EngineConfig(), max_store_entries=0
        )
    with pytest.raises(ConfigurationError, match="cache_store_entries"):
        EngineConfig(cache_store_entries=0)
    config = EngineConfig(
        cache=f"shared:{tmp_path / 't2'}", cache_store_entries=7
    )
    backend = resolve_cache_backend(config, index)
    assert isinstance(backend, SharedCacheTier)
    assert backend._max_store_entries == 7
    # Serving plumbing: the store bound never shapes answers, so it is
    # excluded from the cross-process cache identity.
    assert config.cache_identity() == EngineConfig().cache_identity()


# --------------------------------------------------------------------- #
# TTL: max_age_s / EngineConfig.cache_ttl_s (time-bounded entries)
# --------------------------------------------------------------------- #


def _backdate(tier, seconds):
    """Age every store row by ``seconds`` (simulated wall-clock)."""
    tier._connection().execute(
        "UPDATE entries SET created_at = created_at - ?", (float(seconds),)
    )


class TestSharedTierTTL:
    def test_ttl_validation_and_config_wiring(self, world, tmp_path):
        dataset, index, _ = world
        with pytest.raises(ConfigurationError, match="max_age_s"):
            SharedCacheTier(
                tmp_path / "t1", config=EngineConfig(), max_age_s=0
            )
        with pytest.raises(ConfigurationError, match="cache_ttl_s"):
            EngineConfig(cache_ttl_s=-5)
        config = EngineConfig(
            cache=f"shared:{tmp_path / 't2'}", cache_ttl_s=60.0
        )
        backend = resolve_cache_backend(config, index)
        assert isinstance(backend, SharedCacheTier)
        assert backend._max_age_s == 60.0
        # Expiry only ever forces recomputation, never a different
        # answer, so the TTL is excluded from the cache identity.
        assert config.cache_identity() == EngineConfig().cache_identity()

    def test_worker_spawn_inherits_ttl(self, tmp_path):
        tier = SharedCacheTier(
            tmp_path / "tier", config=EngineConfig(), max_age_s=30.0
        )
        assert tier.spawn_for_worker()._max_age_s == 30.0

    def test_stale_entries_are_misses_for_fresh_handles(self, tmp_path):
        """Reads are stamp-filtered: an expired row is a miss in every
        process, whether or not GC has reclaimed it yet."""
        directory = tmp_path / "tier"
        writer = SharedCacheTier(
            directory, config=EngineConfig(), max_age_s=60.0
        )
        writer.put_ranges((1, 2), [(0, 1, 2)])

        def fresh(**kwargs):
            return SharedCacheTier(
                directory, config=EngineConfig(), **kwargs
            )

        # Within the TTL a second handle serves it through the store.
        assert fresh(max_age_s=60.0).get_ranges((1, 2)) == [(0, 1, 2)]
        _backdate(writer, 3600)
        assert fresh(max_age_s=60.0).get_ranges((1, 2)) is None
        # TTL is per-handle opt-in: a handle without one still serves
        # the old row (age never changes correctness, only freshness).
        assert fresh().get_ranges((1, 2)) == [(0, 1, 2)]

    def test_write_side_gc_reclaims_stale_rows(self, tmp_path):
        tier = SharedCacheTier(
            tmp_path / "tier", config=EngineConfig(), max_age_s=10.0
        )
        for i in range(4):
            tier.put_ranges((i, i + 1), [(0, i, i + 1)])
        _backdate(tier, 3600)

        def n_rows():
            return tier._connection().execute(
                "SELECT COUNT(*) FROM entries"
            ).fetchone()[0]

        assert n_rows() == 4
        tier._last_expiry_gc = 0.0  # defeat amortisation: GC must fire
        tier.put_ranges((9, 10), [(0, 0, 1)])
        assert n_rows() == 1  # only the fresh write survives

    def test_sync_epoch_steady_state_runs_amortised_expiry(
        self, world, tmp_path
    ):
        dataset, index, _ = world
        tier = SharedCacheTier(
            tmp_path / "tier", config=EngineConfig(), max_age_s=10.0
        )
        tier.sync_epoch(index)
        tier.put_ranges((1, 2), [(0, 1, 2)])
        _backdate(tier, 3600)
        tier._last_expiry_gc = 0.0
        # Epoch unchanged — the per-trip steady-state path — still
        # reclaims stale rows (amortised).
        tier.sync_epoch(index)
        assert tier._connection().execute(
            "SELECT COUNT(*) FROM entries"
        ).fetchone()[0] == 0

    def test_pre_ttl_store_migrates_in_place(self, tmp_path):
        """A store written before the created_at column existed gains it
        on open; its rows stamp 0 and expire once a TTL is configured."""
        import sqlite3

        directory = tmp_path / "tier"
        directory.mkdir()
        legacy = sqlite3.connect(str(directory / "subquery_cache.sqlite"))
        legacy.execute(
            "CREATE TABLE entries ("
            "  section TEXT NOT NULL,"
            "  ident TEXT NOT NULL,"
            "  key TEXT NOT NULL,"
            "  epoch INTEGER NOT NULL,"
            "  lineage TEXT NOT NULL,"
            "  payload TEXT NOT NULL,"
            "  PRIMARY KEY (section, ident, key, epoch, lineage)"
            ")"
        )
        legacy.commit()
        legacy.close()
        tier = SharedCacheTier(
            directory, config=EngineConfig(), max_age_s=60.0
        )
        columns = {
            row[1]
            for row in tier._connection().execute(
                "PRAGMA table_info(entries)"
            )
        }
        assert "created_at" in columns
        # New writes are stamped and served normally.
        tier.put_ranges((1, 2), [(0, 1, 2)])
        assert tier.get_ranges((1, 2)) == [(0, 1, 2)]

    def test_expired_entries_recompute_identically(self, world, tmp_path):
        """End to end: after expiry a fresh session recomputes — answers
        stay bit-identical to the uncached baseline, hits drop to zero."""
        dataset, index, trips = world
        requests = requests_for(trips, 3)
        baseline = TravelTimeDB(
            index, dataset.network,
            config=EngineConfig(cache_enabled=False),
        ).query_many(requests)
        spec = EngineConfig(
            cache=f"shared:{tmp_path / 'tier'}", cache_ttl_s=3600.0
        )
        db_warm = TravelTimeDB(index, dataset.network, config=spec)
        db_warm.query_many(requests)
        _backdate(db_warm.engine.cache, 7200)
        db_cold = TravelTimeDB(index, dataset.network, config=spec)
        results = db_cold.query_many(requests)
        tier = db_cold.engine.cache
        assert sum(tier.tier_stats().shared_hits.values()) == 0
        for expected, actual in zip(baseline, results):
            assert_bit_identical(expected, actual)
