"""Compaction: merged shards must answer bit-identically (ISSUE 9).

The merge concatenates adjacent shards' aligned temporal partitions, so
its correctness claim is exactly the sharded-equivalence claim one
level up: for every query, every estimator mode, and every
append/compact interleaving, the compacted index returns the same
bytes as the uncompacted one and as the monolithic Procedure 6 oracle.
Property-based sampling (hypothesis) drives the query space; the stats
tests pin the satellite-2 fix (``shard_stats`` staying internally
consistent across appends, seals, and compactions).
"""

import json

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    EngineConfig,
    FixedInterval,
    PeriodicInterval,
    ShardedSNTIndex,
    SNTIndex,
    StrictPathQuery,
    TrajectorySet,
    generate_dataset,
    open_db,
)
from repro.config import SECONDS_PER_DAY
from repro.core.engine import QueryEngine
from repro.errors import ShardError
from repro.sntindex.compaction import (
    CompactionPolicy,
    compact_index_dir,
    merge_shard_indexes,
    plan_compaction,
)

from tests.typed_api import as_requests, run_trip

PARTITION_DAYS = 7
N_SHARDS = 3
ESTIMATOR_MODES = (None, "ISA", "BT-Fast", "BT-Acc", "CSS-Fast", "CSS-Acc")


@pytest.fixture(scope="module")
def world():
    dataset = generate_dataset("tiny", seed=0)
    mono = SNTIndex.build(
        dataset.trajectories,
        dataset.network.alphabet_size,
        partition_days=PARTITION_DAYS,
    )
    trips = [tr for tr in dataset.trajectories if len(tr) >= 6]
    return dataset, mono, trips


def _build_sharded(dataset, n_shards=N_SHARDS):
    return ShardedSNTIndex.build(
        dataset.trajectories,
        dataset.network.alphabet_size,
        n_shards=n_shards,
        partition_days=PARTITION_DAYS,
    )


@pytest.fixture(scope="module")
def compacted(world):
    """One fully compacted copy, shared by the read-only tests."""
    dataset, _, _ = world
    sharded = _build_sharded(dataset)
    report = sharded.compact()
    assert report.did_compact and sharded.n_shards == 1
    return sharded


def _interval_for(trip, choice):
    if choice == "periodic":
        return PeriodicInterval.around(trip.start_time, 900)
    if choice == "narrow":
        return FixedInterval(trip.start_time - SECONDS_PER_DAY,
                             trip.start_time + SECONDS_PER_DAY)
    return FixedInterval(0, 10**10)


def assert_bit_identical(expected, actual):
    assert actual.histogram == expected.histogram
    assert actual.histogram.as_dict() == expected.histogram.as_dict()
    assert actual.estimated_mean == expected.estimated_mean
    assert actual.n_index_scans == expected.n_index_scans
    assert actual.n_estimator_skips == expected.n_estimator_skips
    assert len(actual.outcomes) == len(expected.outcomes)
    for out_expected, out_actual in zip(expected.outcomes, actual.outcomes):
        assert out_actual.query == out_expected.query
        assert np.array_equal(out_actual.values, out_expected.values)
        assert out_actual.histogram == out_expected.histogram
        assert out_actual.from_fallback == out_expected.from_fallback


# --------------------------------------------------------------------- #
# Policy / planning
# --------------------------------------------------------------------- #


class TestPolicy:
    def test_defaults_valid(self):
        CompactionPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"small_traversals": -1},
            {"min_run": 1},
            {"min_run": 0},
            {"min_run": 3, "max_group": 2},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ShardError):
            CompactionPolicy(**kwargs)

    def test_plan_full(self):
        assert plan_compaction([5, 5, 5], CompactionPolicy()) == [[0, 1, 2]]

    def test_plan_respects_size_threshold(self):
        groups = plan_compaction(
            [10, 3, 3, 10, 3, 3, 3],
            CompactionPolicy(small_traversals=5),
        )
        assert groups == [[1, 2], [4, 5, 6]]

    def test_plan_chunks_at_max_group(self):
        groups = plan_compaction(
            [1] * 7, CompactionPolicy(max_group=3)
        )
        assert groups == [[0, 1, 2], [3, 4, 5]]  # short tail left alone

    def test_plan_drops_short_runs(self):
        assert plan_compaction(
            [1, 10, 1], CompactionPolicy(small_traversals=5)
        ) == []

    @given(
        sizes=st.lists(st.integers(0, 20), max_size=24),
        threshold=st.one_of(st.none(), st.integers(0, 20)),
        min_run=st.integers(2, 4),
        extra=st.integers(0, 4),
    )
    @settings(max_examples=200, deadline=None)
    def test_plan_invariants(self, sizes, threshold, min_run, extra):
        policy = CompactionPolicy(
            small_traversals=threshold,
            min_run=min_run,
            max_group=min_run + extra,
        )
        groups = plan_compaction(sizes, policy)
        seen = set()
        for group in groups:
            # contiguous, ascending, within policy bounds
            assert group == list(range(group[0], group[-1] + 1))
            assert policy.min_run <= len(group) <= policy.max_group
            for position in group:
                assert position not in seen  # disjoint
                seen.add(position)
                if threshold is not None:
                    assert sizes[position] <= threshold


# --------------------------------------------------------------------- #
# Merge equivalence
# --------------------------------------------------------------------- #


class TestMergeEquivalence:
    @given(
        trip_index=st.integers(min_value=0, max_value=10**6),
        interval=st.sampled_from(["full", "narrow", "periodic"]),
        beta=st.sampled_from([None, 5, 20]),
        prefix=st.integers(min_value=2, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_compacted_matches_monolithic(
        self, world, compacted, trip_index, interval, beta, prefix
    ):
        dataset, mono, trips = world
        trip = trips[trip_index % len(trips)]
        query = StrictPathQuery(
            path=trip.path[:prefix],
            interval=_interval_for(trip, interval),
            beta=beta,
        )
        expected = run_trip(QueryEngine(mono, dataset.network), query)
        actual = run_trip(QueryEngine(compacted, dataset.network), query)
        assert_bit_identical(expected, actual)

    @pytest.mark.parametrize("mode", ESTIMATOR_MODES)
    def test_estimator_modes_agree(self, world, compacted, mode):
        dataset, mono, trips = world
        config = EngineConfig(estimator_mode=mode)
        engine_mono = QueryEngine(mono, dataset.network, config=config)
        engine_compact = QueryEngine(
            compacted, dataset.network, config=config
        )
        for trip in trips[:8]:
            query = StrictPathQuery(
                path=trip.path[:4],
                interval=PeriodicInterval.around(trip.start_time, 900),
                beta=10,
            )
            assert_bit_identical(
                run_trip(engine_mono, query, exclude_ids=(trip.traj_id,)),
                run_trip(
                    engine_compact, query, exclude_ids=(trip.traj_id,)
                ),
            )

    def test_partial_compaction_matches(self, world):
        """max_group=2 leaves a mixed layout — still bit-identical."""
        dataset, mono, trips = world
        sharded = _build_sharded(dataset)
        report = sharded.compact(CompactionPolicy(max_group=2))
        assert report.did_compact
        assert 1 < sharded.n_shards < N_SHARDS + 1
        engine_mono = QueryEngine(mono, dataset.network)
        engine = QueryEngine(sharded, dataset.network)
        for trip in trips[:10]:
            query = StrictPathQuery(
                path=trip.path[:3],
                interval=PeriodicInterval.around(trip.start_time, 900),
            )
            assert_bit_identical(
                run_trip(engine_mono, query), run_trip(engine, query)
            )

    def test_merge_rejects_disagreeing_shards(self, world):
        dataset, _, _ = world
        a = _build_sharded(dataset)
        other = SNTIndex.build(
            dataset.trajectories,
            dataset.network.alphabet_size,
            partition_days=PARTITION_DAYS,
            kind="btree",
        )
        with pytest.raises(ShardError, match="disagree"):
            merge_shard_indexes([a._sealed[0].index, other])

    def test_epoch_and_token_bump_iff_compacting(self, world):
        dataset, _, _ = world
        sharded = _build_sharded(dataset)
        token_before = sharded.epoch_token
        report = sharded.compact()
        assert report.did_compact
        assert sharded.epoch == report.epoch == 1
        assert sharded.epoch_token != token_before
        token_after = sharded.epoch_token
        noop = sharded.compact()  # one shard left: nothing to merge
        assert not noop.did_compact
        assert sharded.epoch == 1 and sharded.epoch_token == token_after


# --------------------------------------------------------------------- #
# Append / compact / append cycles
# --------------------------------------------------------------------- #


def _split_by_bucket(dataset, cut_from_end=2):
    trajectories = list(dataset.trajectories)
    t_min = min(tr.start_time for tr in trajectories)
    window = PARTITION_DAYS * SECONDS_PER_DAY
    buckets = sorted({(tr.start_time - t_min) // window
                      for tr in trajectories})
    cut = buckets[-cut_from_end]
    base = [
        tr for tr in trajectories if (tr.start_time - t_min) // window < cut
    ]
    tail_pool = [tr for tr in trajectories if tr not in base]
    tails = [
        TrajectorySet(
            [tr for tr in tail_pool
             if (tr.start_time - t_min) // window == bucket]
        )
        for bucket in buckets[-cut_from_end:]
    ]
    return base, [tail for tail in tails if len(tail)]


class TestAppendCompactCycles:
    def test_append_compact_append_matches_monolithic(self, world):
        dataset, mono, trips = world
        base, tails = _split_by_bucket(dataset)
        assert len(tails) >= 2
        sharded = ShardedSNTIndex.build(
            TrajectorySet(base),
            dataset.network.alphabet_size,
            n_shards=2,
            partition_days=PARTITION_DAYS,
        )
        sharded.append(tails[0])
        sharded.seal_staging()
        report = sharded.compact()
        assert report.did_compact
        for tail in tails[1:]:
            sharded.append(tail)
        sharded.seal_staging()
        # Second compaction folds the newly sealed tail in as well.
        sharded.compact()
        assert sharded.n_shards == 1
        engine_mono = QueryEngine(mono, dataset.network)
        engine = QueryEngine(sharded, dataset.network)
        for trip in trips[:15]:
            for interval in ("full", "narrow", "periodic"):
                query = StrictPathQuery(
                    path=trip.path[:3],
                    interval=_interval_for(trip, interval),
                )
                assert_bit_identical(
                    run_trip(engine_mono, query), run_trip(engine, query)
                )

    def test_compaction_preserves_staging(self, world):
        dataset, mono, _ = world
        base, tails = _split_by_bucket(dataset)
        sharded = ShardedSNTIndex.build(
            TrajectorySet(base),
            dataset.network.alphabet_size,
            n_shards=2,
            partition_days=PARTITION_DAYS,
        )
        for tail in tails:  # all into the (unsealed) staging shard
            sharded.append(tail)
        report = sharded.compact()
        assert report.did_compact
        assert sharded.n_shards == 2  # 1 merged + staging
        engine_mono = QueryEngine(mono, dataset.network)
        engine = QueryEngine(sharded, dataset.network)
        trip = list(tails[0])[0]
        query = StrictPathQuery(
            path=trip.path[:3], interval=FixedInterval(0, 10**10)
        )
        # mono covers the whole corpus, and so does base + staged tails:
        # compaction must leave the staging shard untouched.
        assert_bit_identical(
            run_trip(engine_mono, query), run_trip(engine, query)
        )


# --------------------------------------------------------------------- #
# Persistence + cache lineage
# --------------------------------------------------------------------- #


class TestCompactIndexDir:
    def test_monolithic_dir_rejected(self, world, tmp_path):
        _, mono, _ = world
        target = mono.save(tmp_path / "mono")
        with pytest.raises(ShardError, match="monolithic"):
            compact_index_dir(target)

    def test_on_disk_roundtrip(self, world, tmp_path):
        dataset, mono, trips = world
        sharded = _build_sharded(dataset)
        target = sharded.save(
            tmp_path / "idx", extra={"origin": "compaction-test"}
        )
        report = compact_index_dir(target)
        assert report.did_compact
        manifest = json.loads((target / "manifest.json").read_text())
        assert manifest["extra"] == {"origin": "compaction-test"}
        assert manifest["epoch"] == 1
        assert len(manifest["shards"]) == report.n_sealed_after

        from repro.sntindex.sharded import load_sharded_index

        loaded = load_sharded_index(target)
        engine_mono = QueryEngine(mono, dataset.network)
        engine = QueryEngine(loaded, dataset.network)
        for trip in trips[:10]:
            query = StrictPathQuery(
                path=trip.path[:3],
                interval=PeriodicInterval.around(trip.start_time, 900),
            )
            assert_bit_identical(
                run_trip(engine_mono, query), run_trip(engine, query)
            )

    def test_noop_compaction_writes_nothing(self, world, tmp_path):
        dataset, _, _ = world
        sharded = _build_sharded(dataset)
        sharded.compact()
        target = sharded.save(tmp_path / "idx")
        before = (target / "manifest.json").read_bytes()
        report = compact_index_dir(target)
        assert not report.did_compact
        assert (target / "manifest.json").read_bytes() == before

    def test_shared_cache_tier_not_poisoned_by_compaction(
        self, world, tmp_path
    ):
        """The epoch/lineage bump must invalidate pre-compaction entries.

        Same shared cache directory before and after an on-disk
        compaction: the second session must answer bit-identically to
        the monolithic oracle (a stale hit recorded against the old
        shard layout would have to get lucky to do that — the tier's
        (epoch, lineage) key makes it a structural miss instead).
        """
        dataset, mono, trips = world
        sharded = _build_sharded(dataset)
        target = sharded.save(tmp_path / "idx")
        cache_dir = tmp_path / "cachetier"
        config = EngineConfig(cache=f"shared:{cache_dir}")
        queries = [
            StrictPathQuery(
                path=trip.path[:3],
                interval=PeriodicInterval.around(trip.start_time, 900),
            )
            for trip in trips[:10]
        ]

        with open_db(str(target), network=dataset.network,
                     config=config) as db:
            warm = db.query_many(as_requests(queries))
        assert any(cache_dir.iterdir())  # the tier persisted entries

        report = compact_index_dir(target)
        assert report.did_compact

        with open_db(str(target), network=dataset.network,
                     config=config) as db:
            after = db.query_many(as_requests(queries))

        engine_mono = QueryEngine(mono, dataset.network)
        for query, warm_result, post in zip(queries, warm, after):
            expected = run_trip(engine_mono, query)
            assert_bit_identical(expected, warm_result)
            assert_bit_identical(expected, post)


# --------------------------------------------------------------------- #
# Satellite 2: shard_stats stays consistent across topology changes
# --------------------------------------------------------------------- #


class TestStatsAcrossTopologyChanges:
    def _run_queries(self, sharded, dataset, trips, n=5):
        engine = QueryEngine(sharded, dataset.network)
        for trip in trips[:n]:
            run_trip(
                engine,
                StrictPathQuery(
                    path=trip.path[:3],
                    interval=PeriodicInterval.around(trip.start_time, 900),
                ),
            )

    def test_totals_internally_consistent_after_seal(self, world):
        """The pre-fix failure mode: carried totals with reset per-shard
        counters made ``sum(per_shard_scans) != n_shard_scans``."""
        dataset, _, trips = world
        base, tails = _split_by_bucket(dataset)
        sharded = ShardedSNTIndex.build(
            TrajectorySet(base),
            dataset.network.alphabet_size,
            n_shards=2,
            partition_days=PARTITION_DAYS,
        )
        self._run_queries(sharded, dataset, trips)
        sharded.append(tails[0])
        self._run_queries(sharded, dataset, trips)
        sharded.seal_staging()
        stats = sharded.shard_stats()
        assert stats.n_shard_scans == sum(stats.per_shard_scans.values())
        assert stats.n_shards == sharded.n_shards
        assert set(stats.per_shard_scans) == {
            entry.label for entry in sharded.router.entries
        }

    def test_totals_preserved_across_compaction(self, world):
        dataset, _, trips = world
        sharded = _build_sharded(dataset)
        self._run_queries(sharded, dataset, trips)
        before = sharded.shard_stats()
        assert before.n_shard_scans > 0
        sharded.compact()
        after = sharded.shard_stats()
        assert after.n_dispatches == before.n_dispatches
        assert after.n_shard_scans == before.n_shard_scans
        assert after.n_shards_pruned == before.n_shards_pruned
        assert sum(after.per_shard_scans.values()) == sum(
            before.per_shard_scans.values()
        )
        # Labels resolve in the post-compaction topology.
        assert set(after.per_shard_scans) == {
            entry.label for entry in sharded.router.entries
        }
        assert after.n_shards == 1

    def test_history_segments_are_per_topology(self, world):
        dataset, _, trips = world
        sharded = _build_sharded(dataset)
        assert sharded.shard_stats_history() == []
        self._run_queries(sharded, dataset, trips)
        sharded.compact()
        history = sharded.shard_stats_history()
        assert len(history) == 1
        segment = history[0]
        assert segment.n_shards == N_SHARDS  # recorded pre-compaction
        self._run_queries(sharded, dataset, trips)
        merged = sharded.shard_stats()
        assert merged.n_shard_scans == (
            segment.n_shard_scans
            + sharded.router.stats().n_shard_scans
        )

    def test_router_drain_zeroes_counters(self, world):
        dataset, _, trips = world
        sharded = _build_sharded(dataset)
        self._run_queries(sharded, dataset, trips, n=3)
        drained = sharded.router.drain()
        assert drained.n_dispatches > 0
        empty = sharded.router.stats()
        assert empty.n_dispatches == 0
        assert empty.n_shard_scans == 0
        assert all(v == 0 for v in empty.per_shard_scans.values())
