"""Structural invariants of the built SNT-index."""

import numpy as np
import pytest

from repro import SNTIndex, generate_dataset
from repro.config import SECONDS_PER_DAY


@pytest.fixture(scope="module")
def world():
    dataset = generate_dataset("tiny", seed=0)
    index = SNTIndex.build(
        dataset.trajectories, dataset.network.alphabet_size
    )
    return dataset, index


@pytest.fixture(scope="module")
def partitioned(world):
    dataset, _ = world
    return dataset, SNTIndex.build(
        dataset.trajectories,
        dataset.network.alphabet_size,
        partition_days=14,
    )


class TestForestInvariants:
    def test_every_traversal_indexed(self, world):
        dataset, index = world
        per_edge = {}
        for trajectory in dataset.trajectories:
            for point in trajectory.points:
                per_edge[point.edge] = per_edge.get(point.edge, 0) + 1
        assert index.forest.total_records() == sum(per_edge.values())
        for edge, count in per_edge.items():
            assert len(index.forest.get(edge)) == count

    def test_leaf_isa_within_single_edge_range(self, world):
        """Every leaf's ISA value lies inside R(<edge>) of its partition."""
        dataset, index = world
        for edge in list(index.forest.edges())[:50]:
            st, ed = index.partitions[0].isa_range([edge])
            columns = index.forest.get(edge).columns
            assert np.all(columns.isa >= st)
            assert np.all(columns.isa < ed)

    def test_leaf_aggregates_consistent(self, world):
        """a - TT of a leaf equals the sum of its predecessors' TTs."""
        dataset, index = world
        trajectory = dataset.trajectories[17]
        cumulative = trajectory.cumulative_durations()
        for position, point in enumerate(trajectory.points):
            columns = index.forest.get(point.edge).columns
            rows = np.nonzero(
                (columns.d == trajectory.traj_id)
                & (columns.seq == position)
            )[0]
            assert rows.size == 1
            row = rows[0]
            assert columns.tt[row] == pytest.approx(point.tt)
            assert columns.a[row] == pytest.approx(cumulative[position])
            assert columns.t[row] == point.t

    def test_columns_sorted_by_time(self, world):
        _, index = world
        for edge in list(index.forest.edges())[:50]:
            t = index.forest.get(edge).columns.t
            assert np.all(np.diff(t) >= 0)

    def test_user_container_complete(self, world):
        dataset, index = world
        for trajectory in dataset.trajectories:
            assert index.user_of(trajectory.traj_id) == trajectory.user_id


class TestPartitionAssignment:
    def test_partitions_cover_all_trajectories(self, partitioned):
        dataset, index = partitioned
        assert sum(p.n_trajectories for p in index.partitions) == len(
            dataset.trajectories
        )
        assert sum(p.n_traversals for p in index.partitions) == (
            dataset.trajectories.total_traversals()
        )

    def test_partition_time_ranges_disjoint(self, partitioned):
        _, index = partitioned
        for a, b in zip(index.partitions, index.partitions[1:]):
            assert a.t_hi <= b.t_lo or a.t_lo >= b.t_hi or a.w != b.w

    def test_leaves_carry_partition_ids(self, partitioned):
        dataset, index = partitioned
        window = 14 * SECONDS_PER_DAY
        # Check a sample of leaves: partition id matches the trajectory's
        # start-time bucket.
        by_id = {tr.traj_id: tr for tr in dataset.trajectories}
        checked = 0
        for edge in list(index.forest.edges())[:20]:
            columns = index.forest.get(edge).columns
            for row in range(0, len(columns), 37):
                trajectory = by_id[int(columns.d[row])]
                bucket = (trajectory.start_time - index.t_min) // window
                # w is the dense rank of the bucket; ws are ordered.
                partition = index.partitions[int(columns.w[row])]
                assert partition.t_lo <= trajectory.start_time < partition.t_hi
                checked += 1
        assert checked > 50

    def test_tod_store_partition_totals(self, partitioned):
        dataset, index = partitioned
        # Per-edge totals across partitions equal the edge's record count.
        for edge in list(index.forest.edges())[:30]:
            total = sum(
                index.tod_store.total(edge, partition=p.w)
                for p in index.partitions
            )
            assert total == len(index.forest.get(edge))


class TestIsaRanges:
    def test_ranges_sum_to_full_count(self, world, partitioned):
        dataset, full_index = world
        _, part_index = partitioned
        for trajectory in list(dataset.trajectories)[:40]:
            path = trajectory.path[:3]
            full = full_index.path_traversal_count(path)
            part = part_index.path_traversal_count(path)
            assert full == part

    def test_contains_path_consistency(self, partitioned):
        dataset, index = partitioned
        for trajectory in list(dataset.trajectories)[:40]:
            assert index.contains_path(trajectory.path)

    def test_build_stats_populated(self, world):
        dataset, index = world
        stats = index.build_stats
        assert stats.setup_seconds > 0
        assert stats.n_trajectories == len(dataset.trajectories)
        assert stats.n_partitions == 1
