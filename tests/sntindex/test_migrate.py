"""``repro migrate``: v1 directories upgrade in place (ISSUE 9 sat. 1).

The v1 layout (``arrays.npz`` + ``partitions.pkl``) is synthesized by a
faithful copy of the v1 writer, so the tests prove the real contract:
the v2 loaders reject the old directory with a pointer at ``repro
migrate``, migration rewrites it atomically, and the migrated index
answers bit-identically to one built fresh from the same trajectories.
"""

import json
import pickle

import numpy as np
import pytest

from repro import (
    FixedInterval,
    PeriodicInterval,
    ShardedSNTIndex,
    SNTIndex,
    StrictPathQuery,
    generate_dataset,
)
from repro.errors import IndexFormatError, PersistenceError
from repro.sntindex.migrate import migrate_index_dir
from repro.sntindex.persistence import load_index
from repro.sntindex.sharded import _entry_manifest, load_sharded_index

PARTITION_DAYS = 7
_V1_COLUMNS = ("t", "isa", "d", "tt", "a", "seq", "w")


def write_v1_payload(index, target, extra=None):
    """The PR-1/PR-2 on-disk writer, verbatim (npz + pickle + meta v1)."""
    target.mkdir(parents=True, exist_ok=True)
    edges = sorted(index.forest.edges())
    chunks = {name: [] for name in _V1_COLUMNS}
    offsets = np.zeros(len(edges) + 1, dtype=np.int64)
    for i, edge in enumerate(edges):
        columns = index.forest.get(edge).columns
        offsets[i + 1] = offsets[i] + len(columns)
        for name in _V1_COLUMNS:
            chunks[name].append(getattr(columns, name))
    arrays = {
        "users": index.users,
        "edge_ids": np.asarray(edges, dtype=np.int64),
        "edge_offsets": offsets,
    }
    for name in _V1_COLUMNS:
        arrays[f"col_{name}"] = (
            np.concatenate(chunks[name]) if chunks[name] else np.empty(0)
        )
    tod_keys, tod_counts = index.tod_store.as_arrays()
    arrays["tod_keys"] = tod_keys
    arrays["tod_counts"] = tod_counts
    np.savez_compressed(target / "arrays.npz", **arrays)
    with open(target / "partitions.pkl", "wb") as handle:
        pickle.dump(
            list(index.partitions), handle, protocol=pickle.HIGHEST_PROTOCOL
        )
    stats = index.build_stats
    meta = {
        "format": "snt-index",
        "format_version": 1,
        "kind": index.kind,
        "partition_days": index.partition_days,
        "t_min": index.t_min,
        "t_max": index.t_max,
        "alphabet_size": index.alphabet_size,
        "tod_bucket_s": index.tod_store.bucket_width_s,
        "build_stats": {
            "setup_seconds": stats.setup_seconds,
            "n_partitions": stats.n_partitions,
            "n_trajectories": stats.n_trajectories,
            "n_traversals": stats.n_traversals,
        },
        "extra": dict(extra or {}),
    }
    (target / "meta.json").write_text(json.dumps(meta, indent=2))


def write_v1_sharded(sharded, target, extra=None):
    """The PR-3-era sharded tree: v1 shard dirs + format_version 1."""
    target.mkdir(parents=True, exist_ok=True)
    shard_dirs = []
    for i, entry in enumerate(sharded._sealed):
        directory = f"shard_{i:04d}"
        write_v1_payload(entry.index, target / directory)
        shard_dirs.append(_entry_manifest(entry, directory))
    staging_manifest = None
    if sharded._staging is not None:
        write_v1_payload(sharded._staging.index, target / "staging")
        staging_manifest = _entry_manifest(sharded._staging, "staging")
        with open(target / "staging_trajectories.pkl", "wb") as handle:
            pickle.dump(sharded._staged, handle)
    manifest = {
        "format": "snt-sharded-index",
        "format_version": 1,
        "alphabet_size": sharded.alphabet_size,
        "kind": sharded.kind,
        "partition_days": sharded.partition_days,
        "t_min": sharded.t_min,
        "t_max": sharded.t_max,
        "tod_bucket_s": sharded.tod_bucket_s,
        "epoch": sharded.epoch,
        "epoch_token": sharded.epoch_token,
        "shards": shard_dirs,
        "staging": staging_manifest,
        "extra": dict(extra or {}),
    }
    (target / "manifest.json").write_text(json.dumps(manifest, indent=2))


@pytest.fixture(scope="module")
def world():
    dataset = generate_dataset("tiny", seed=0)
    mono = SNTIndex.build(
        dataset.trajectories,
        dataset.network.alphabet_size,
        partition_days=PARTITION_DAYS,
    )
    sharded = ShardedSNTIndex.build(
        dataset.trajectories,
        dataset.network.alphabet_size,
        n_shards=3,
        partition_days=PARTITION_DAYS,
    )
    trips = [tr for tr in dataset.trajectories if len(tr) >= 3]
    return dataset, mono, sharded, trips


def _assert_answers_match(mono, loaded, trips):
    interval = FixedInterval(mono.t_min, mono.t_min + 14 * 86_400)
    for trip in trips[:15]:
        for iv in (interval, PeriodicInterval.around(trip.start_time, 900)):
            query = StrictPathQuery(path=trip.path[:3], interval=iv)
            expected = mono.get_travel_times(query)
            actual = loaded.get_travel_times(query)
            assert np.array_equal(
                np.asarray(expected.values), np.asarray(actual.values)
            )
            assert expected.n_matched == actual.n_matched


class TestMonolithicMigration:
    def test_v2_loader_rejects_v1_with_migrate_hint(self, world, tmp_path):
        _, mono, _, _ = world
        write_v1_payload(mono, tmp_path / "v1")
        with pytest.raises(IndexFormatError, match="repro migrate"):
            load_index(tmp_path / "v1")

    def test_migrates_and_answers_identically(self, world, tmp_path):
        _, mono, _, trips = world
        target = tmp_path / "v1"
        write_v1_payload(mono, target, extra={"origin": "v1-test"})
        report = migrate_index_dir(target)
        assert report.changed
        assert report.layout == "monolithic"
        assert (report.from_version, report.to_version) == (1, 2)
        # v1 payload files are gone, v2 layout is in place.
        assert not (target / "arrays.npz").exists()
        assert (target / "payload").is_dir()
        meta = json.loads((target / "meta.json").read_text())
        assert meta["format_version"] == 2
        assert meta["extra"] == {"origin": "v1-test"}  # provenance kept
        _assert_answers_match(mono, load_index(target), trips)

    def test_idempotent(self, world, tmp_path):
        _, mono, _, _ = world
        target = tmp_path / "v1"
        write_v1_payload(mono, target)
        assert migrate_index_dir(target).changed
        second = migrate_index_dir(target)
        assert not second.changed
        assert second.from_version == second.to_version == 2

    def test_current_directory_untouched(self, world, tmp_path):
        _, mono, _, _ = world
        target = mono.save(tmp_path / "current")
        before = (target / "meta.json").read_bytes()
        report = migrate_index_dir(target)
        assert not report.changed
        assert (target / "meta.json").read_bytes() == before


class TestShardedMigration:
    def test_migrates_sealed_and_staging(self, world, tmp_path):
        dataset, mono, sharded, trips = world
        target = tmp_path / "v1-sharded"
        write_v1_sharded(sharded, target, extra={"origin": "v1-sharded"})
        report = migrate_index_dir(target)
        assert report.changed
        assert report.layout == "sharded"
        assert report.shard_dirs_migrated == [
            f"shard_{i:04d}" for i in range(3)
        ]
        manifest = json.loads((target / "manifest.json").read_text())
        assert manifest["format_version"] == 2
        assert manifest["extra"] == {"origin": "v1-sharded"}
        loaded = load_sharded_index(target)
        assert loaded.n_shards == 3
        _assert_answers_match(mono, loaded, trips)

    def test_idempotent(self, world, tmp_path):
        _, _, sharded, _ = world
        target = tmp_path / "v1-sharded"
        write_v1_sharded(sharded, target)
        assert migrate_index_dir(target).changed
        assert not migrate_index_dir(target).changed


class TestErrors:
    def test_not_an_index(self, tmp_path):
        (tmp_path / "stray.txt").write_text("hello")
        with pytest.raises(PersistenceError, match="not a saved"):
            migrate_index_dir(tmp_path)

    def test_future_version_rejected(self, world, tmp_path):
        _, mono, _, _ = world
        write_v1_payload(mono, tmp_path / "future")
        meta_path = tmp_path / "future" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(PersistenceError, match="newer"):
            migrate_index_dir(tmp_path / "future")
