"""End-to-end reproduction of the paper's running example (Sections 2-4).

Builds the SNT-index over the four example trajectories and checks every
number the paper states: the BWT, the ISA ranges, the query results, the
histograms, and their convolution.
"""

import numpy as np
import pytest

from repro import (
    FixedInterval,
    Histogram,
    SNTIndex,
    StrictPathQuery,
    get_travel_times,
)
from repro.trajectories import Trajectory, TrajectoryPoint, TrajectorySet

from tests.paper_vectors import (
    ISA_RANGE_A,
    ISA_RANGE_AB,
    TRAJECTORIES,
    WORKED_CONVOLUTION,
    WORKED_H,
    WORKED_H1,
    WORKED_H2,
    WORKED_QUERY_PATH,
)

A, B, C, D, E, F = 1, 2, 3, 4, 5, 6


@pytest.fixture(scope="module")
def index():
    trajectories = TrajectorySet(
        [
            Trajectory(d, u, [TrajectoryPoint(*p) for p in seq])
            for d, u, seq in TRAJECTORIES
        ]
    )
    return SNTIndex.build(trajectories, alphabet_size=7)


class TestSpatialPart:
    def test_isa_range_A(self, index):
        assert index.isa_ranges([A]) == [(0, *ISA_RANGE_A)]

    def test_isa_range_AB(self, index):
        assert index.isa_ranges([A, B]) == [(0, *ISA_RANGE_AB)]

    def test_path_traversal_counts(self, index):
        assert index.path_traversal_count([A]) == 4
        assert index.path_traversal_count([A, B]) == 3
        assert index.path_traversal_count([A, B, E]) == 2
        assert index.path_traversal_count([A, C, D, E]) == 1

    def test_contains_path(self, index):
        assert index.contains_path([A, B, E])
        assert not index.contains_path([E, A])

    def test_user_container(self, index):
        assert index.user_of(0) == 1
        assert index.user_of(1) == 2
        assert index.user_of(2) == 2
        assert index.user_of(3) == 1


class TestWorkedQuery:
    """Q = spq(<A,B,E>, [0,15), u = u1, 2) -> {tr0, tr3} (Section 2.3)."""

    def test_full_query(self, index):
        query = StrictPathQuery(
            path=WORKED_QUERY_PATH,
            interval=FixedInterval(0, 15),
            user=1,
            beta=2,
        )
        result = get_travel_times(index, query)
        assert sorted(result.values.tolist()) == [10.0, 11.0]
        histogram = Histogram.from_values(result.values, 1.0)
        assert histogram.as_dict() == WORKED_H

    def test_sub_query_Q1(self, index):
        query = StrictPathQuery(
            path=(A, B), interval=FixedInterval(0, 15), beta=3
        )
        values = get_travel_times(index, query).values
        assert Histogram.from_values(values, 1.0).as_dict() == WORKED_H1

    def test_sub_query_Q2(self, index):
        query = StrictPathQuery(
            path=(E,), interval=FixedInterval(0, 15), beta=3
        )
        values = get_travel_times(index, query).values
        assert Histogram.from_values(values, 1.0).as_dict() == WORKED_H2

    def test_convolution(self, index):
        h1 = Histogram.from_values(
            get_travel_times(
                index,
                StrictPathQuery(path=(A, B), interval=FixedInterval(0, 15), beta=3),
            ).values,
            1.0,
        )
        h2 = Histogram.from_values(
            get_travel_times(
                index,
                StrictPathQuery(path=(E,), interval=FixedInterval(0, 15), beta=3),
            ).values,
            1.0,
        )
        assert (h1 * h2).as_dict() == WORKED_CONVOLUTION

    def test_durations_from_paper(self, index):
        # Dur(tr0, <A,B,E>) = 11 and Dur(tr3, <A,B,E>) = 10.
        query = StrictPathQuery(
            path=WORKED_QUERY_PATH, interval=FixedInterval(0, 15)
        )
        values = sorted(get_travel_times(index, query).values.tolist())
        assert values == [10.0, 11.0]

    def test_time_interval_filters(self, index):
        # Only tr0 enters A before t = 2.
        query = StrictPathQuery(
            path=WORKED_QUERY_PATH, interval=FixedInterval(0, 2)
        )
        assert get_travel_times(index, query).values.tolist() == [11.0]

    def test_user_filter_u2(self, index):
        query = StrictPathQuery(
            path=(A, B), interval=FixedInterval(0, 15), user=2
        )
        # Only tr2 is from u2 and traverses <A,B>: duration 3 + 3.
        assert get_travel_times(index, query).values.tolist() == [6.0]

    def test_beta_cut_takes_earliest(self, index):
        query = StrictPathQuery(
            path=(A,), interval=FixedInterval(0, 15), beta=2
        )
        # Earliest two A-traversals: tr0 (t=0, TT=3) and tr1 (t=2, TT=4).
        assert sorted(get_travel_times(index, query).values.tolist()) == [
            3.0,
            4.0,
        ]

    def test_no_match_returns_empty(self, index):
        query = StrictPathQuery(
            path=(E, A), interval=FixedInterval(0, 15)
        )
        result = get_travel_times(index, query)
        assert result.is_empty
        assert not result.from_fallback
