"""Save/load round trips for the SNT-index (ISSUE 1 satellite).

A rebuilt-free ``SNTIndex.load`` must reproduce the saved index exactly:
ISA ranges, component sizes, user container, ToD selectivities, and full
trip-query answers.  The paper's Table 1 example network anchors the
exact-value checks; a generated tiny world covers temporal partitioning
and the service cold-start path.
"""

import json

import numpy as np
import pytest

from repro import (
    EngineConfig,
    FixedInterval,
    PeriodicInterval,
    QueryEngine,
    SNTIndex,
    StrictPathQuery,
    TripRequest,
)
from repro import Edge, RoadCategory, RoadNetwork, ZoneType
from repro.errors import IndexError_, IndexFormatError, PersistenceError
from repro.sntindex.persistence import FORMAT_VERSION, PAYLOAD_DIR
from repro.trajectories import Trajectory, TrajectoryPoint, TrajectorySet

from tests.paper_vectors import (
    ISA_RANGE_A,
    ISA_RANGE_AB,
    TABLE_1,
    TRAJECTORIES,
    WORKED_QUERY_PATH,
)

from tests.typed_api import run_trip

A, B, C, D, E, F = 1, 2, 3, 4, 5, 6


def paper_trajectories() -> TrajectorySet:
    return TrajectorySet(
        [
            Trajectory(d, u, [TrajectoryPoint(*p) for p in seq])
            for d, u, seq in TRAJECTORIES
        ]
    )


@pytest.fixture(scope="module")
def paper_index():
    return SNTIndex.build(paper_trajectories(), alphabet_size=7)


@pytest.fixture()
def loaded_paper_index(paper_index, tmp_path):
    paper_index.save(tmp_path / "index")
    return SNTIndex.load(tmp_path / "index")


class TestPaperExampleRoundTrip:
    def test_isa_ranges_survive(self, loaded_paper_index):
        assert loaded_paper_index.isa_ranges([A]) == [(0, *ISA_RANGE_A)]
        assert loaded_paper_index.isa_ranges([A, B]) == [(0, *ISA_RANGE_AB)]
        assert loaded_paper_index.isa_ranges([E, A]) == []

    def test_component_sizes_identical(self, paper_index, loaded_paper_index):
        assert (
            loaded_paper_index.component_sizes()
            == paper_index.component_sizes()
        )

    def test_scalars_and_users(self, paper_index, loaded_paper_index):
        assert loaded_paper_index.t_min == paper_index.t_min
        assert loaded_paper_index.t_max == paper_index.t_max
        assert loaded_paper_index.alphabet_size == paper_index.alphabet_size
        assert loaded_paper_index.kind == paper_index.kind
        assert loaded_paper_index.partition_days is None
        assert np.array_equal(loaded_paper_index.users, paper_index.users)
        assert loaded_paper_index.build_stats == paper_index.build_stats

    def test_forest_columns_identical(self, paper_index, loaded_paper_index):
        assert sorted(loaded_paper_index.forest.edges()) == sorted(
            paper_index.forest.edges()
        )
        for edge in paper_index.forest.edges():
            before = paper_index.forest.get(edge).columns
            after = loaded_paper_index.forest.get(edge).columns
            for name in ("t", "isa", "d", "tt", "a", "seq", "w"):
                assert np.array_equal(
                    getattr(after, name), getattr(before, name)
                ), f"column {name} of edge {edge} changed"

    def test_tod_store_identical(self, paper_index, loaded_paper_index):
        before = paper_index.tod_store
        after = loaded_paper_index.tod_store
        assert after.bucket_width_s == before.bucket_width_s
        assert len(after) == len(before)
        for edge in (A, B, E):
            assert after.selectivity(edge, 0, 600) == before.selectivity(
                edge, 0, 600
            )

    def test_worked_trip_query_answers(self, paper_index, loaded_paper_index):
        # Figure 1 topology with the Table 1 attributes.
        topology = {A: (1, 2), B: (2, 3), C: (2, 4), D: (4, 3), E: (3, 5), F: (3, 6)}
        network = RoadNetwork()
        for vertex in range(1, 7):
            network.add_vertex(vertex, (float(vertex), 0.0))
        for edge_id, (category, zone, speed, length, _estimate) in TABLE_1.items():
            source, target = topology[edge_id]
            network.add_edge(
                Edge(
                    edge_id,
                    source,
                    target,
                    RoadCategory(category),
                    ZoneType(zone),
                    float(length),
                    float(speed),
                )
            )
        query = StrictPathQuery(
            path=WORKED_QUERY_PATH, interval=FixedInterval(0, 15), user=1
        )
        config = EngineConfig(partitioner="pi_1", bucket_width_s=1.0)
        before = run_trip(QueryEngine(paper_index, network, config), query)
        after = run_trip(
            QueryEngine(loaded_paper_index, network, config), query
        )
        assert after.histogram == before.histogram
        assert after.estimated_mean == before.estimated_mean
        assert after.n_index_scans == before.n_index_scans


class TestPartitionedWorldRoundTrip:
    @pytest.fixture(scope="class")
    def world(self):
        from repro import generate_dataset

        dataset = generate_dataset("tiny", seed=3)
        index = SNTIndex.build(
            dataset.trajectories,
            dataset.network.alphabet_size,
            partition_days=14,
        )
        return dataset, index

    def test_partitioned_trip_queries_survive(self, world, tmp_path):
        dataset, index = world
        index.save(tmp_path / "index")
        loaded = SNTIndex.load(tmp_path / "index")
        assert loaded.n_partitions == index.n_partitions > 1
        assert loaded.partition_days == index.partition_days
        assert loaded.component_sizes() == index.component_sizes()

        trips = [tr for tr in dataset.trajectories if len(tr) >= 8][:4]
        for trip in trips:
            query = StrictPathQuery(
                path=trip.path,
                interval=PeriodicInterval.around(trip.start_time, 900),
                beta=10,
            )
            before = run_trip(
                QueryEngine(index, dataset.network),
                query,
                exclude_ids=(trip.traj_id,),
            )
            after = run_trip(
                QueryEngine(loaded, dataset.network),
                query,
                exclude_ids=(trip.traj_id,),
            )
            assert after.histogram == before.histogram
            assert after.estimated_mean == before.estimated_mean

    def test_service_cold_start_from_saved(self, world, tmp_path):
        from repro.service import TravelTimeService

        dataset, index = world
        index.save(tmp_path / "index")
        service = TravelTimeService.from_saved(
            tmp_path / "index", dataset.network
        )
        trip = next(tr for tr in dataset.trajectories if len(tr) >= 8)
        query = StrictPathQuery(
            path=trip.path,
            interval=PeriodicInterval.around(trip.start_time, 900),
            beta=10,
        )
        # The service is the internal batch executor behind the typed
        # API; the cold-started engine must answer like the in-memory
        # one (the shims were removed in PR 5 — go through query()).
        result = run_trip(
            service.engine, query, exclude_ids=(trip.traj_id,)
        )
        expected = run_trip(
            QueryEngine(index, dataset.network),
            query,
            exclude_ids=(trip.traj_id,),
        )
        assert result.histogram == expected.histogram


class TestFormatGuards:
    def test_save_returns_target_and_is_idempotent(
        self, paper_index, tmp_path
    ):
        target = paper_index.save(tmp_path / "index")
        again = paper_index.save(tmp_path / "index")  # overwrite in place
        assert target == again
        assert SNTIndex.load(target).isa_ranges([A]) == [(0, *ISA_RANGE_A)]

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(PersistenceError):
            SNTIndex.load(tmp_path / "nope")

    def test_version_mismatch_raises(self, paper_index, tmp_path):
        target = paper_index.save(tmp_path / "index")
        meta_path = target / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = FORMAT_VERSION + 1
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(IndexFormatError, match="format version"):
            SNTIndex.load(target)

    def test_v1_directory_names_the_migration_path(
        self, paper_index, tmp_path
    ):
        """A pre-mmap (pickled) index directory is refused with the
        rebuild/roundtrip hint, not a generic corruption error."""
        target = paper_index.save(tmp_path / "index")
        meta_path = target / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 1
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(IndexFormatError, match="rebuild"):
            SNTIndex.load(target)

    def test_foreign_format_raises(self, paper_index, tmp_path):
        target = paper_index.save(tmp_path / "index")
        meta_path = target / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format"] = "something-else"
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(PersistenceError, match="format"):
            SNTIndex.load(target)

    def test_corrupt_meta_raises(self, paper_index, tmp_path):
        target = paper_index.save(tmp_path / "index")
        (target / "meta.json").write_text("{not json")
        with pytest.raises(PersistenceError):
            SNTIndex.load(target)

    def test_persistence_error_is_an_index_error(self):
        assert issubclass(PersistenceError, IndexError_)

    # -- fail-fast meta validation (ISSUE 2 satellite): a manifest that
    # disagrees with the target world must be rejected *before* any
    # payload I/O.  Poisoning a payload array proves the order: were
    # the payload read first, the error would name the payload.

    def _poison_payload(self, target):
        (target / PAYLOAD_DIR / "users.npy").write_bytes(b"not numpy")
        (target / PAYLOAD_DIR / "p0_wt_words.npy").write_bytes(b"not numpy")

    def test_bad_kind_rejected_before_payload(
        self, paper_index, tmp_path
    ):
        target = paper_index.save(tmp_path / "index")
        meta_path = target / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["kind"] = "splay"
        meta_path.write_text(json.dumps(meta))
        self._poison_payload(target)
        with pytest.raises(PersistenceError, match="kind 'splay'"):
            SNTIndex.load(target)

    def test_bad_alphabet_rejected_before_payload(
        self, paper_index, tmp_path
    ):
        target = paper_index.save(tmp_path / "index")
        meta_path = target / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["alphabet_size"] = -3
        meta_path.write_text(json.dumps(meta))
        self._poison_payload(target)
        with pytest.raises(PersistenceError, match="alphabet_size"):
            SNTIndex.load(target)

    def test_expected_alphabet_mismatch_rejected_before_payload(
        self, paper_index, tmp_path
    ):
        target = paper_index.save(tmp_path / "index")
        self._poison_payload(target)
        with pytest.raises(PersistenceError, match="same world"):
            SNTIndex.load(
                target,
                expected_alphabet_size=paper_index.alphabet_size + 1,
            )

    def test_expected_kind_mismatch_rejected_before_payload(
        self, paper_index, tmp_path
    ):
        target = paper_index.save(tmp_path / "index")
        self._poison_payload(target)
        with pytest.raises(PersistenceError, match="kind"):
            SNTIndex.load(target, expected_kind="btree")

    def test_matching_expectations_load_fine(self, paper_index, tmp_path):
        target = paper_index.save(tmp_path / "index")
        loaded = SNTIndex.load(
            target,
            expected_alphabet_size=paper_index.alphabet_size,
            expected_kind=paper_index.kind,
        )
        assert loaded.isa_ranges([A]) == [(0, *ISA_RANGE_A)]

    def test_truncated_array_raises_persistence_error(
        self, paper_index, tmp_path
    ):
        target = paper_index.save(tmp_path / "index")
        col_t = target / PAYLOAD_DIR / "col_t.npy"
        payload = col_t.read_bytes()
        col_t.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(PersistenceError):
            SNTIndex.load(target)

    def test_no_pickle_in_saved_directory(self, paper_index, tmp_path):
        """v2 is pickle-free: loading must not execute foreign bytecode,
        so no .pkl file may appear anywhere in the payload."""
        target = paper_index.save(tmp_path / "index")
        assert list(target.rglob("*.pkl")) == []
        assert not (target / "arrays.npz").exists()

    def test_missing_array_raises_persistence_error(
        self, paper_index, tmp_path
    ):
        target = paper_index.save(tmp_path / "index")
        (target / PAYLOAD_DIR / "col_t.npy").unlink()
        with pytest.raises(PersistenceError, match="col_t"):
            SNTIndex.load(target)

    def test_corrupt_edge_offsets_raise_persistence_error(
        self, paper_index, tmp_path
    ):
        """Bad offsets must not clamp to silently-empty columns."""
        import numpy as np

        target = paper_index.save(tmp_path / "index")
        offsets_path = target / PAYLOAD_DIR / "edge_offsets.npy"
        np.save(offsets_path, np.load(offsets_path) * 1000)
        with pytest.raises(PersistenceError, match="edge_offsets"):
            SNTIndex.load(target)

    def test_corrupt_wavelet_payload_raises_persistence_error(
        self, paper_index, tmp_path
    ):
        """A wavelet concatenation disagreeing with the node directory
        must be rejected, not sliced short.  Partitions materialise
        lazily, so the open succeeds and the first partition touch
        raises."""
        import numpy as np

        target = paper_index.save(tmp_path / "index")
        words_path = target / PAYLOAD_DIR / "p0_wt_words.npy"
        np.save(words_path, np.load(words_path)[:-1])
        loaded = SNTIndex.load(target)
        with pytest.raises(PersistenceError, match="wavelet payload"):
            loaded.partitions[0]

    def test_corrupt_code_table_raises_persistence_error(
        self, paper_index, tmp_path
    ):
        """The three code-table arrays must be mutually consistent —
        a truncated length array cannot silently drop symbols."""
        import numpy as np

        target = paper_index.save(tmp_path / "index")
        lengths_path = target / PAYLOAD_DIR / "p0_code_lengths.npy"
        np.save(lengths_path, np.load(lengths_path)[:-1])
        loaded = SNTIndex.load(target)
        with pytest.raises(PersistenceError, match="code-table"):
            loaded.partitions[0]

    def test_corrupt_tod_counts_raise_persistence_error(
        self, paper_index, tmp_path
    ):
        import numpy as np

        target = paper_index.save(tmp_path / "index")
        counts_path = target / PAYLOAD_DIR / "tod_counts.npy"
        np.save(counts_path, np.load(counts_path)[:-1])
        loaded = SNTIndex.load(target)  # lazy: opening succeeds
        with pytest.raises(PersistenceError, match="reconstruct"):
            loaded.tod_store

    def test_save_refuses_to_destroy_a_foreign_directory(
        self, paper_index, tmp_path
    ):
        """`save(path)` replaces the target wholesale, so anything that
        is not a saved index (e.g. a world directory given to --out by
        mistake) must be refused, not deleted."""
        victim = tmp_path / "world"
        victim.mkdir()
        (victim / "trajectories.txt").write_text("precious user data")
        with pytest.raises(PersistenceError, match="refusing to overwrite"):
            paper_index.save(victim)
        assert (victim / "trajectories.txt").read_text() == (
            "precious user data"
        )
        with pytest.raises(PersistenceError, match="not a directory"):
            paper_index.save(victim / "trajectories.txt")
        # An empty directory is fine.
        empty = tmp_path / "empty"
        empty.mkdir()
        assert paper_index.save(empty) == empty
        assert SNTIndex.load(empty).isa_ranges([A]) == [(0, *ISA_RANGE_A)]

    def test_failed_save_cleans_staging_and_keeps_old_index(
        self, paper_index, tmp_path, monkeypatch
    ):
        import numpy as np

        target = paper_index.save(tmp_path / "index")

        def explode(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(np, "save", explode)
        with pytest.raises(OSError):
            paper_index.save(tmp_path / "index")
        monkeypatch.undo()
        # No staging/graveyard leftovers; the old index still loads.
        assert [p.name for p in tmp_path.iterdir()] == ["index"]
        assert SNTIndex.load(target).isa_ranges([A]) == [(0, *ISA_RANGE_A)]

    def test_orphaned_graveyard_is_restored_not_deleted(
        self, paper_index, tmp_path
    ):
        """A crash between the two swap renames leaves the only copy in
        the dead saver's graveyard; the next save must restore it (and a
        reader between the crash and that save must at worst see a
        missing index, never a torn one)."""
        import shutil

        target = paper_index.save(tmp_path / "index")
        # Simulate the post-crash state: index moved to a dead pid's
        # graveyard, nothing installed.
        orphan = tmp_path / ".index.old-999999999"
        shutil.move(target, orphan)
        assert not target.exists()
        paper_index.save(tmp_path / "index")
        assert not orphan.exists()
        assert SNTIndex.load(target).isa_ranges([A]) == [(0, *ISA_RANGE_A)]

    def test_resave_swaps_cleanly_over_existing(self, paper_index, tmp_path):
        target = paper_index.save(tmp_path / "index")
        marker = target / "stale-file"
        marker.write_text("left over from an older save")
        again = paper_index.save(tmp_path / "index")
        assert again == target
        # The swap replaces the directory wholesale: no stale remnants,
        # no temp staging directories left behind.
        assert not marker.exists()
        assert [p.name for p in tmp_path.iterdir()] == ["index"]
        assert SNTIndex.load(target).isa_ranges([A]) == [(0, *ISA_RANGE_A)]
