"""Tests for buildMap/probeMap/getTravelTimes semantics and edge cases."""

import numpy as np
import pytest

from repro import (
    FixedInterval,
    PeriodicInterval,
    SNTIndex,
    StrictPathQuery,
    count_matches,
    get_travel_times,
)
from repro.config import SECONDS_PER_DAY
from repro.errors import IndexError_
from repro.trajectories import Trajectory, TrajectoryPoint, TrajectorySet


def make_index(rows, alphabet_size=10):
    trajectories = TrajectorySet(
        [
            Trajectory(d, u, [TrajectoryPoint(*p) for p in seq])
            for d, u, seq in rows
        ]
    )
    return SNTIndex.build(trajectories, alphabet_size=alphabet_size)


class TestCircularPathGuard:
    """The seq number guards against circular trajectories (Section 4.1.3)."""

    def test_loop_trajectory_counted_per_occurrence(self):
        # Path 1 -> 2 -> 1 -> 2: the sub-path <1,2> occurs twice.
        index = make_index(
            [(0, 1, [(1, 0, 2.0), (2, 2, 3.0), (1, 5, 4.0), (2, 9, 5.0)])]
        )
        query = StrictPathQuery(path=(1, 2), interval=FixedInterval(0, 100))
        values = sorted(get_travel_times(index, query).values.tolist())
        assert values == [5.0, 9.0]  # 2+3 and 4+5, distinct occurrences

    def test_loop_does_not_cross_match(self):
        # <1,2,1> occurs once; probing must not pair first 1 with last 2.
        index = make_index(
            [(0, 1, [(1, 0, 2.0), (2, 2, 3.0), (1, 5, 4.0)])]
        )
        query = StrictPathQuery(path=(1, 2, 1), interval=FixedInterval(0, 100))
        assert get_travel_times(index, query).values.tolist() == [9.0]


class TestFallback:
    def test_single_segment_fallback(self):
        index = make_index([(0, 1, [(1, 0, 2.0), (2, 2, 3.0)])])
        # Edge 5 exists in the network but carries no data.
        query = StrictPathQuery(path=(5,), interval=FixedInterval(0, 100))
        result = get_travel_times(index, query, fallback_tt=lambda e: 42.5)
        assert result.from_fallback
        assert result.values.tolist() == [42.5]
        assert result.n_matched == 0

    def test_no_fallback_for_multi_segment(self):
        index = make_index([(0, 1, [(1, 0, 2.0), (2, 2, 3.0)])])
        query = StrictPathQuery(path=(5, 6), interval=FixedInterval(0, 100))
        result = get_travel_times(index, query, fallback_tt=lambda e: 42.5)
        assert result.is_empty
        assert not result.from_fallback

    def test_no_fallback_when_data_exists(self):
        index = make_index([(0, 1, [(1, 0, 2.0)])])
        query = StrictPathQuery(path=(1,), interval=FixedInterval(0, 100))
        result = get_travel_times(index, query, fallback_tt=lambda e: 42.5)
        assert not result.from_fallback
        assert result.values.tolist() == [2.0]


class TestPeriodicBetaSemantics:
    def make(self):
        # Two traversals of edge 1 at 08:00 on two days.
        eight = 8 * 3600
        return make_index(
            [
                (0, 1, [(1, eight, 3.0), (2, eight + 3, 4.0)]),
                (1, 2, [(1, SECONDS_PER_DAY + eight, 5.0), (2, SECONDS_PER_DAY + eight + 5, 6.0)]),
            ]
        )

    def test_periodic_below_beta_is_insufficient(self):
        index = self.make()
        query = StrictPathQuery(
            path=(1, 2),
            interval=PeriodicInterval.around(8 * 3600, 900),
            beta=5,
        )
        result = get_travel_times(index, query)
        assert result.insufficient
        assert result.is_empty
        assert result.n_matched == 2

    def test_fixed_below_beta_still_returns(self):
        index = self.make()
        query = StrictPathQuery(
            path=(1, 2), interval=FixedInterval(0, 10 * SECONDS_PER_DAY), beta=5
        )
        result = get_travel_times(index, query)
        assert not result.insufficient
        assert sorted(result.values.tolist()) == [7.0, 11.0]

    def test_periodic_at_beta_succeeds(self):
        index = self.make()
        query = StrictPathQuery(
            path=(1, 2),
            interval=PeriodicInterval.around(8 * 3600, 900),
            beta=2,
        )
        result = get_travel_times(index, query)
        assert sorted(result.values.tolist()) == [7.0, 11.0]


class TestExcludeIds:
    def test_excluded_trajectory_invisible(self):
        index = make_index(
            [
                (0, 1, [(1, 0, 2.0), (2, 2, 3.0)]),
                (1, 1, [(1, 10, 4.0), (2, 14, 5.0)]),
            ]
        )
        query = StrictPathQuery(path=(1, 2), interval=FixedInterval(0, 100))
        result = get_travel_times(index, query, exclude_ids=(0,))
        assert result.values.tolist() == [9.0]


class TestCountMatches:
    def test_count_full(self):
        index = make_index(
            [
                (0, 1, [(1, 0, 2.0), (2, 2, 3.0)]),
                (1, 2, [(1, 10, 4.0), (2, 14, 5.0)]),
                (2, 1, [(1, 20, 1.0), (3, 21, 1.0)]),
            ]
        )
        assert count_matches(index, (1, 2), FixedInterval(0, 100)) == 2
        assert count_matches(index, (1,), FixedInterval(0, 100)) == 3
        assert count_matches(index, (1,), FixedInterval(0, 100), user=1) == 2
        assert count_matches(index, (1,), FixedInterval(0, 5)) == 1

    def test_count_with_limit(self):
        index = make_index(
            [(d, 1, [(1, d * 10, 2.0)]) for d in range(10)]
        )
        assert count_matches(
            index, (1,), FixedInterval(0, 1000), limit=3
        ) == 3

    def test_count_missing_path(self):
        index = make_index([(0, 1, [(1, 0, 2.0)])])
        assert count_matches(index, (7,), FixedInterval(0, 100)) == 0


class TestTemporalPartitioning:
    """Partitioned and FULL indexes must answer identically."""

    def make_set(self):
        rows = []
        rng = np.random.default_rng(4)
        for d in range(40):
            day = int(rng.integers(0, 60))
            start = day * SECONDS_PER_DAY + int(rng.integers(0, 80_000))
            edges = [1, 2, 3] if d % 2 == 0 else [2, 3, 4]
            t = start
            points = []
            for e in edges:
                tt = float(rng.integers(2, 20))
                points.append((e, t, tt))
                t += int(tt)
            rows.append((d, d % 5, points))
        return rows

    @pytest.mark.parametrize("partition_days", [7, 30, None])
    def test_equivalence(self, partition_days):
        rows = self.make_set()
        full = make_index(rows)
        part = SNTIndex.build(
            TrajectorySet(
                [
                    Trajectory(d, u, [TrajectoryPoint(*p) for p in seq])
                    for d, u, seq in rows
                ]
            ),
            alphabet_size=10,
            partition_days=partition_days,
        )
        for path in [(1, 2), (2, 3), (2, 3, 4), (1, 2, 3), (4,)]:
            for interval in [
                FixedInterval(0, 100 * SECONDS_PER_DAY),
                FixedInterval(0, 20 * SECONDS_PER_DAY),
                PeriodicInterval.around(10 * 3600, 7200),
            ]:
                query = StrictPathQuery(path=path, interval=interval)
                got = sorted(
                    get_travel_times(part, query).values.tolist()
                )
                want = sorted(
                    get_travel_times(full, query).values.tolist()
                )
                assert got == want, (path, interval, partition_days)

    def test_partition_count(self):
        rows = self.make_set()
        part = SNTIndex.build(
            TrajectorySet(
                [
                    Trajectory(d, u, [TrajectoryPoint(*p) for p in seq])
                    for d, u, seq in rows
                ]
            ),
            alphabet_size=10,
            partition_days=7,
        )
        assert part.n_partitions > 1
        full = make_index(rows)
        assert full.n_partitions == 1

    def test_bad_partition_days(self):
        rows = self.make_set()
        with pytest.raises(IndexError_):
            SNTIndex.build(
                TrajectorySet(
                    [
                        Trajectory(d, u, [TrajectoryPoint(*p) for p in seq])
                        for d, u, seq in rows
                    ]
                ),
                alphabet_size=10,
                partition_days=0,
            )


class TestBuildValidation:
    def test_empty_set_rejected(self):
        with pytest.raises(IndexError_):
            SNTIndex.build(TrajectorySet(), alphabet_size=5)

    def test_component_sizes_reported(self):
        index = make_index([(0, 1, [(1, 0, 2.0), (2, 2, 3.0)])])
        sizes = index.component_sizes()
        assert set(sizes) == {"WT", "C", "user", "Forest", "tod_histograms"}
        assert all(v >= 0 for v in sizes.values())

    def test_btree_kind(self):
        index = SNTIndex.build(
            TrajectorySet(
                [Trajectory(0, 1, [TrajectoryPoint(1, 0, 2.0)])]
            ),
            alphabet_size=5,
            kind="btree",
        )
        query = StrictPathQuery(path=(1,), interval=FixedInterval(0, 100))
        assert get_travel_times(index, query).values.tolist() == [2.0]

    def test_user_of_unknown_id(self):
        index = make_index([(0, 1, [(1, 0, 2.0)])])
        with pytest.raises(IndexError_):
            index.user_of(99)
