"""Property-based equivalence: SNT-index vs. the naive linear-scan oracle.

Hypothesis generates random micro trajectory sets and random strict path
queries; the index must return exactly the oracle's travel times under
every combination of temporal predicate, user filter, beta, exclusion and
temporal partitioning.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    FixedInterval,
    PeriodicInterval,
    SNTIndex,
    StrictPathQuery,
    naive_match_count,
    naive_travel_times,
)
from repro.config import SECONDS_PER_DAY
from repro.sntindex import count_matches, get_travel_times
from repro.trajectories import Trajectory, TrajectoryPoint, TrajectorySet

N_EDGES = 6


@st.composite
def trajectory_sets(draw):
    """Random sets of 1-12 short trajectories over a 6-edge alphabet."""
    n = draw(st.integers(1, 12))
    trajectories = []
    for traj_id in range(n):
        length = draw(st.integers(1, 5))
        edges = [draw(st.integers(1, N_EDGES)) for _ in range(length)]
        start = draw(st.integers(0, 3 * SECONDS_PER_DAY))
        tts = [draw(st.integers(1, 50)) for _ in range(length)]
        points, t = [], start
        for edge, tt in zip(edges, tts):
            points.append(TrajectoryPoint(edge, t, float(tt)))
            t += tt
        trajectories.append(
            Trajectory(traj_id, draw(st.integers(1, 3)), points)
        )
    return TrajectorySet(trajectories)


@st.composite
def queries(draw):
    length = draw(st.integers(1, 3))
    path = tuple(draw(st.integers(1, N_EDGES)) for _ in range(length))
    if draw(st.booleans()):
        interval = FixedInterval(
            draw(st.integers(0, SECONDS_PER_DAY)),
            draw(st.integers(SECONDS_PER_DAY + 1, 5 * SECONDS_PER_DAY)),
        )
    else:
        interval = PeriodicInterval(
            start_tod=draw(st.integers(0, SECONDS_PER_DAY - 1)),
            duration=draw(st.integers(60, SECONDS_PER_DAY)),
        )
    user = draw(st.sampled_from([None, 1, 2, 3]))
    beta = draw(st.sampled_from([None, 1, 2, 5]))
    return StrictPathQuery(path=path, interval=interval, user=user, beta=beta)


@settings(max_examples=120, deadline=None)
@given(trajectory_sets(), queries())
def test_property_index_matches_oracle(trajectories, query):
    index = SNTIndex.build(trajectories, alphabet_size=N_EDGES + 1)
    got = sorted(get_travel_times(index, query).values.tolist())
    want = sorted(naive_travel_times(trajectories, query).tolist())
    assert got == want


@settings(max_examples=60, deadline=None)
@given(trajectory_sets(), queries(), st.sampled_from([1, 2, 7]))
def test_property_partitioned_index_matches_oracle(
    trajectories, query, partition_days
):
    index = SNTIndex.build(
        trajectories,
        alphabet_size=N_EDGES + 1,
        partition_days=partition_days,
    )
    got = sorted(get_travel_times(index, query).values.tolist())
    want = sorted(naive_travel_times(trajectories, query).tolist())
    assert got == want


@settings(max_examples=60, deadline=None)
@given(trajectory_sets(), queries())
def test_property_count_matches_oracle(trajectories, query):
    index = SNTIndex.build(trajectories, alphabet_size=N_EDGES + 1)
    got = count_matches(index, query.path, query.interval, user=query.user)
    want = naive_match_count(
        trajectories, query.path, query.interval, user=query.user
    )
    assert got == want


@settings(max_examples=40, deadline=None)
@given(trajectory_sets(), queries(), st.integers(0, 11))
def test_property_exclusion_matches_oracle(trajectories, query, excluded):
    index = SNTIndex.build(trajectories, alphabet_size=N_EDGES + 1)
    got = sorted(
        get_travel_times(
            index, query, exclude_ids=(excluded,)
        ).values.tolist()
    )
    want = sorted(
        naive_travel_times(
            trajectories, query, exclude_ids=(excluded,)
        ).tolist()
    )
    assert got == want


@settings(max_examples=40, deadline=None)
@given(trajectory_sets())
def test_property_btree_and_css_agree(trajectories):
    css = SNTIndex.build(trajectories, alphabet_size=N_EDGES + 1, kind="css")
    btree = SNTIndex.build(
        trajectories, alphabet_size=N_EDGES + 1, kind="btree"
    )
    query = StrictPathQuery(
        path=(1,), interval=PeriodicInterval(start_tod=0, duration=43_200)
    )
    assert sorted(get_travel_times(css, query).values.tolist()) == sorted(
        get_travel_times(btree, query).values.tolist()
    )
