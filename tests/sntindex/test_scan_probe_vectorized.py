"""Property-based equivalence of the vectorized scan/probe stage.

The sorted-key probe join, the O(log n) periodic selection, and the
grouped ``*_many`` scans each replaced a scalar implementation that had
been proven against the naive oracle.  These suites pin the replacements
to their scalar predecessors *bit-identically* (values, dtypes, and
emission order — not just sorted multisets): the dict-based probe loop,
the ``np.mod`` full-column periodic pass, and the per-query scalar scan
loop are re-implemented here as oracles and must agree exactly on
hypothesis-generated worlds, including empty edges, single-segment
paths, beta cuts, and duplicate ``(d, seq)`` probe keys.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    FixedInterval,
    PeriodicInterval,
    SNTIndex,
    StrictPathQuery,
)
from repro.config import SECONDS_PER_DAY
from repro.sntindex.persistence import FORMAT_MINOR, read_meta
from repro.sntindex.procedures import (
    first_segment_matches,
    first_segment_matches_many,
    monolithic_travel_times,
    monolithic_travel_times_many,
    probe_travel_times,
)
from repro.sntindex.sharded import ShardedSNTIndex
from repro.temporal.forest import EdgeTemporalIndex
from repro.temporal.records import TraversalColumns
from repro.trajectories import Trajectory, TrajectoryPoint, TrajectorySet

N_EDGES = 6


# --------------------------------------------------------------------- #
# Scalar oracles (the historical implementations, kept verbatim)
# --------------------------------------------------------------------- #


def dict_probe_oracle(index, query, selected, columns):
    """The pre-join probe: Python dict buildMap + per-candidate loop."""
    l = query.length
    if l == 1:
        values = columns.tt[selected].astype(np.float64, copy=True)
        return values, columns.t[selected]
    first_d = columns.d[selected]
    first_seq = columns.seq[selected]
    diffs = columns.a[selected] - columns.tt[selected]
    probe_map = {
        (int(first_d[i]), int(first_seq[i])): float(diffs[i])
        for i in range(int(selected.size))
    }
    empty = np.empty(0, dtype=np.float64)
    phi_last = index.edge_index(query.path[-1])
    if phi_last is None:
        return empty, np.empty(0, dtype=np.int64)
    last = phi_last.columns
    candidates = np.nonzero(np.isin(last.d, first_d))[0]
    values, order_t = [], []
    for row in candidates:
        key = (int(last.d[row]), int(last.seq[row]) + 1 - l)
        diff = probe_map.get(key)
        if diff is not None:
            values.append(float(last.a[row]) - diff)
            order_t.append(int(last.t[row]))
    return (
        np.asarray(values, dtype=np.float64),
        np.asarray(order_t, dtype=np.int64),
    )


def mod_periodic_oracle(tod, start_tod, duration):
    """The pre-permutation periodic selection: one np.mod full pass."""
    offset = np.mod(tod - (int(start_tod) % SECONDS_PER_DAY),
                    SECONDS_PER_DAY)
    return np.nonzero(offset < duration)[0].astype(np.int64)


def assert_results_identical(got, want):
    assert got.n_matched == want.n_matched
    assert got.from_fallback == want.from_fallback
    assert got.insufficient == want.insufficient
    assert got.values.dtype == want.values.dtype
    assert got.values.tobytes() == want.values.tobytes()


# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #


@st.composite
def trajectory_sets(draw):
    """Random sets of 1-12 short trajectories over a 6-edge alphabet."""
    n = draw(st.integers(1, 12))
    trajectories = []
    for traj_id in range(n):
        length = draw(st.integers(1, 5))
        edges = [draw(st.integers(1, N_EDGES)) for _ in range(length)]
        start = draw(st.integers(0, 3 * SECONDS_PER_DAY))
        tts = [draw(st.integers(1, 50)) for _ in range(length)]
        points, t = [], start
        for edge, tt in zip(edges, tts):
            points.append(TrajectoryPoint(edge, t, float(tt)))
            t += tt
        trajectories.append(
            Trajectory(traj_id, draw(st.integers(1, 3)), points)
        )
    return TrajectorySet(trajectories)


@st.composite
def queries(draw):
    length = draw(st.integers(1, 3))
    path = tuple(draw(st.integers(1, N_EDGES)) for _ in range(length))
    if draw(st.booleans()):
        interval = FixedInterval(
            draw(st.integers(0, SECONDS_PER_DAY)),
            draw(st.integers(SECONDS_PER_DAY + 1, 5 * SECONDS_PER_DAY)),
        )
    else:
        interval = PeriodicInterval(
            start_tod=draw(st.integers(0, SECONDS_PER_DAY - 1)),
            duration=draw(st.integers(60, SECONDS_PER_DAY)),
        )
    user = draw(st.sampled_from([None, 1, 2, 3]))
    beta = draw(st.sampled_from([None, 1, 2, 5]))
    return StrictPathQuery(path=path, interval=interval, user=user, beta=beta)


@st.composite
def demand_sets(draw):
    """A small batch of (query, exclude_ids) demand items."""
    n = draw(st.integers(1, 6))
    items = []
    for _ in range(n):
        query = draw(queries())
        exclude = tuple(
            draw(st.lists(st.integers(0, 11), max_size=2, unique=True))
        )
        items.append((query, exclude))
    return items


# --------------------------------------------------------------------- #
# Probe join vs. the dict oracle
# --------------------------------------------------------------------- #


@settings(max_examples=100, deadline=None)
@given(trajectory_sets(), queries())
def test_probe_join_matches_dict_oracle(trajectories, query):
    index = SNTIndex.build(trajectories, alphabet_size=N_EDGES + 1)
    matches = first_segment_matches(index, query, beta=query.beta)
    if matches is None:
        return
    selected, columns = matches
    got_values, got_t = probe_travel_times(index, query, selected, columns)
    want_values, want_t = dict_probe_oracle(index, query, selected, columns)
    assert got_values.tobytes() == want_values.tobytes()
    assert np.array_equal(got_t, want_t)


def test_probe_join_keeps_last_duplicate_key():
    """Duplicate ``(d, seq)`` first-segment keys replicate dict overwrite.

    The real builder never emits duplicates (a trajectory traverses one
    ``seq`` once), so synthetic columns force the case: two matches with
    the same key but different ``a - TT`` — the join must keep the later
    one, exactly as the dict build did.
    """
    first = TraversalColumns.from_arrays(
        t=np.asarray([10, 20, 30]),
        isa=np.asarray([0, 1, 2]),
        d=np.asarray([5, 5, 7]),
        tt=np.asarray([4.0, 6.0, 3.0]),
        a=np.asarray([4.0, 6.0, 3.0]),
        seq=np.asarray([0, 0, 0]),
        w=None,
    )
    last = TraversalColumns.from_arrays(
        t=np.asarray([15, 25, 35]),
        isa=np.asarray([0, 1, 2]),
        d=np.asarray([5, 7, 5]),
        tt=np.asarray([2.0, 2.0, 2.0]),
        a=np.asarray([6.0, 5.0, 8.0]),
        seq=np.asarray([1, 1, 1]),
        w=None,
    )

    class _FakeIndex:
        def __init__(self):
            self._phis = {
                1: EdgeTemporalIndex(first),
                2: EdgeTemporalIndex(last),
            }

        def edge_index(self, edge):
            return self._phis.get(int(edge))

    index = _FakeIndex()
    query = StrictPathQuery(
        path=(1, 2), interval=FixedInterval(0, SECONDS_PER_DAY)
    )
    selected = np.asarray([0, 1, 2], dtype=np.int64)
    got_values, got_t = probe_travel_times(index, query, selected, first)
    want_values, want_t = dict_probe_oracle(index, query, selected, first)
    assert got_values.tobytes() == want_values.tobytes()
    assert np.array_equal(got_t, want_t)
    assert got_values.size == 3


def test_probe_join_duplicate_key_uses_latest_diff():
    """The overwrite is observable when the duplicate diffs differ."""
    first = TraversalColumns.from_arrays(
        t=np.asarray([10, 20]),
        isa=np.asarray([0, 1]),
        d=np.asarray([5, 5]),
        tt=np.asarray([4.0, 1.0]),
        a=np.asarray([4.0, 6.0]),  # diffs: 0.0 then 5.0 — keep 5.0
        seq=np.asarray([0, 0]),
        w=None,
    )
    last = TraversalColumns.from_arrays(
        t=np.asarray([15]),
        isa=np.asarray([0]),
        d=np.asarray([5]),
        tt=np.asarray([2.0]),
        a=np.asarray([9.0]),
        seq=np.asarray([1]),
        w=None,
    )

    class _FakeIndex:
        def __init__(self):
            self._phis = {
                1: EdgeTemporalIndex(first),
                2: EdgeTemporalIndex(last),
            }

        def edge_index(self, edge):
            return self._phis.get(int(edge))

    index = _FakeIndex()
    query = StrictPathQuery(
        path=(1, 2), interval=FixedInterval(0, SECONDS_PER_DAY)
    )
    selected = np.asarray([0, 1], dtype=np.int64)
    got_values, got_t = probe_travel_times(index, query, selected, first)
    want_values, want_t = dict_probe_oracle(index, query, selected, first)
    assert got_values.tolist() == [4.0]  # 9.0 - 5.0, the later diff
    assert got_values.tobytes() == want_values.tobytes()
    assert np.array_equal(got_t, want_t)


# --------------------------------------------------------------------- #
# Periodic selection vs. the np.mod oracle
# --------------------------------------------------------------------- #


@st.composite
def edge_timestamps(draw):
    n = draw(st.integers(0, 60))
    return [draw(st.integers(0, 5 * SECONDS_PER_DAY)) for _ in range(n)]


def _edge_index_over(timestamps, kind="css"):
    n = len(timestamps)
    columns = TraversalColumns.from_arrays(
        t=np.asarray(timestamps, dtype=np.int64),
        isa=np.arange(n),
        d=np.arange(n),
        tt=np.ones(n),
        a=np.ones(n),
        seq=np.zeros(n, dtype=np.int64),
        w=None,
    )
    return EdgeTemporalIndex(columns, kind=kind)


@settings(max_examples=150, deadline=None)
@given(
    edge_timestamps(),
    st.integers(0, SECONDS_PER_DAY - 1),
    st.integers(1, SECONDS_PER_DAY),
)
def test_periodic_rows_match_mod_oracle(timestamps, start_tod, duration):
    phi = _edge_index_over(timestamps)
    got = phi.rows_periodic(start_tod, duration)
    want = mod_periodic_oracle(
        np.mod(phi.columns.t, SECONDS_PER_DAY), start_tod, duration
    )
    assert np.array_equal(got, want)
    assert got.dtype == np.int64
    assert phi.count_periodic(start_tod, duration) == want.size


@settings(max_examples=60, deadline=None)
@given(
    edge_timestamps(),
    st.lists(
        st.tuples(
            st.integers(0, SECONDS_PER_DAY - 1),
            st.integers(1, SECONDS_PER_DAY),
        ),
        min_size=1,
        max_size=5,
    ),
)
def test_periodic_rows_many_match_scalar(timestamps, windows):
    phi = _edge_index_over(timestamps)
    starts = [start for start, _ in windows]
    durations = [duration for _, duration in windows]
    got = phi.rows_periodic_many(starts, durations)
    for rows, (start, duration) in zip(got, windows):
        assert np.array_equal(rows, phi.rows_periodic(start, duration))


@settings(max_examples=60, deadline=None)
@given(
    edge_timestamps(),
    st.lists(
        st.tuples(
            st.integers(0, 6 * SECONDS_PER_DAY),
            st.integers(0, 6 * SECONDS_PER_DAY),
        ),
        min_size=1,
        max_size=5,
    ),
)
def test_fixed_rows_many_match_scalar(timestamps, bounds):
    phi = _edge_index_over(timestamps)
    los = [lo for lo, _ in bounds]
    his = [hi for _, hi in bounds]
    got = phi.rows_fixed_many(los, his)
    for rows, (lo, hi) in zip(got, bounds):
        assert np.array_equal(rows, phi.rows_fixed(lo, hi))


@settings(max_examples=40, deadline=None)
@given(
    edge_timestamps(),
    st.integers(0, SECONDS_PER_DAY - 1),
    st.integers(1, SECONDS_PER_DAY),
)
def test_periodic_btree_unchanged_by_permutations(
    timestamps, start_tod, duration
):
    css = _edge_index_over(timestamps, kind="css")
    btree = _edge_index_over(timestamps, kind="btree")
    assert np.array_equal(
        np.sort(css.rows_periodic(start_tod, duration)),
        np.sort(btree.rows_periodic(start_tod, duration)),
    )
    assert css.count_periodic(start_tod, duration) == btree.count_periodic(
        start_tod, duration
    )


# --------------------------------------------------------------------- #
# Grouped scans vs. the per-query scalar loop
# --------------------------------------------------------------------- #


def _fallback(edge):
    return 1.5 * edge + 0.25


@settings(max_examples=60, deadline=None)
@given(trajectory_sets(), demand_sets())
def test_grouped_monolithic_matches_scalar_loop(trajectories, demands):
    index = SNTIndex.build(trajectories, alphabet_size=N_EDGES + 1)
    items = [(query, exclude, None) for query, exclude in demands]
    got = monolithic_travel_times_many(index, items, fallback_tt=_fallback)
    for (query, exclude), result in zip(demands, got):
        want = monolithic_travel_times(
            index, query, fallback_tt=_fallback, exclude_ids=exclude
        )
        assert_results_identical(result, want)


@settings(max_examples=40, deadline=None)
@given(trajectory_sets(), demand_sets())
def test_grouped_first_segment_matches_scalar(trajectories, demands):
    index = SNTIndex.build(
        trajectories, alphabet_size=N_EDGES + 1, partition_days=1
    )
    items = [
        (query, exclude, query.beta, None) for query, exclude in demands
    ]
    got = first_segment_matches_many(index, items)
    for (query, exclude), match in zip(demands, got):
        want = first_segment_matches(
            index, query, exclude_ids=exclude, beta=query.beta
        )
        if want is None:
            assert match is None
        else:
            assert match is not None
            assert np.array_equal(match[0], want[0])
            assert match[1] is want[1]


@settings(max_examples=30, deadline=None)
@given(trajectory_sets(), demand_sets())
def test_grouped_sharded_matches_scalar_and_monolithic(
    trajectories, demands
):
    monolithic = SNTIndex.build(
        trajectories, alphabet_size=N_EDGES + 1, partition_days=1
    )
    sharded = ShardedSNTIndex.build(
        trajectories,
        alphabet_size=N_EDGES + 1,
        n_shards=2,
        partition_days=1,
    )
    items = [(query, exclude, None) for query, exclude in demands]
    got = sharded.get_travel_times_many(items, fallback_tt=_fallback)
    for (query, exclude), result in zip(demands, got):
        scalar = sharded.get_travel_times(
            query, fallback_tt=_fallback, exclude_ids=exclude
        )
        assert_results_identical(result, scalar)
        want = monolithic.get_travel_times(
            query, fallback_tt=_fallback, exclude_ids=exclude
        )
        assert_results_identical(result, want)


# --------------------------------------------------------------------- #
# Persistence: v2.0 compatibility and v2.1 zero-copy adoption
# --------------------------------------------------------------------- #


def _reaches_memmap(array):
    base = array
    while base is not None:
        if isinstance(base, np.memmap):
            return True
        base = getattr(base, "base", None)
    return False


def _small_world():
    trajectories = []
    for traj_id in range(8):
        edges = [1 + (traj_id + k) % N_EDGES for k in range(3)]
        points, t = [], 1000 * traj_id
        for k, edge in enumerate(edges):
            points.append(TrajectoryPoint(edge, t, 10.0 + k))
            t += 10 + k
        trajectories.append(Trajectory(traj_id, 1 + traj_id % 3, points))
    return TrajectorySet(trajectories)


def _some_queries():
    return [
        StrictPathQuery(
            path=(1, 2, 3), interval=FixedInterval(0, 10 * SECONDS_PER_DAY)
        ),
        StrictPathQuery(
            path=(2,), interval=PeriodicInterval(start_tod=0, duration=3600)
        ),
        StrictPathQuery(
            path=(3, 4),
            interval=PeriodicInterval(
                start_tod=SECONDS_PER_DAY - 600, duration=1800
            ),
            beta=3,
        ),
    ]


def test_v21_dir_adopts_permutations_zero_copy(tmp_path):
    index = SNTIndex.build(
        _small_world(), alphabet_size=N_EDGES + 1, partition_days=1
    )
    target = tmp_path / "idx"
    index.save(target)
    meta = read_meta(target)
    assert meta["format_minor"] == FORMAT_MINOR
    assert (target / "payload" / "perm_tod.npy").is_file()
    assert (target / "payload" / "perm_probe.npy").is_file()

    loaded = SNTIndex.load(target)
    for query in _some_queries():
        want = index.get_travel_times(query)
        got = loaded.get_travel_times(query)
        assert_results_identical(got, want)
    # Any traversed edge adopted both orders from the mapped payload.
    edge = next(iter(loaded.forest.edges()))
    phi = loaded.forest.get(edge)
    assert phi.tod_order_adopted and phi.probe_order_adopted
    assert _reaches_memmap(phi.tod_order)
    assert _reaches_memmap(phi.probe_order)


def test_v20_dir_without_permutations_still_answers(tmp_path):
    index = SNTIndex.build(
        _small_world(), alphabet_size=N_EDGES + 1, partition_days=1
    )
    target = tmp_path / "idx"
    index.save(target)
    (target / "payload" / "perm_tod.npy").unlink()
    (target / "payload" / "perm_probe.npy").unlink()

    loaded = SNTIndex.load(target)
    for query in _some_queries():
        want = index.get_travel_times(query)
        got = loaded.get_travel_times(query)
        assert_results_identical(got, want)
    edge = next(iter(loaded.forest.edges()))
    phi = loaded.forest.get(edge)
    # Orders were rebuilt lazily, not adopted — and still answer right.
    assert not phi.tod_order_adopted and not phi.probe_order_adopted
    assert np.array_equal(
        phi.tod_order, np.argsort(np.mod(phi.columns.t, SECONDS_PER_DAY),
                                  kind="stable")
    )


def test_corrupt_permutation_length_is_rejected(tmp_path):
    from repro.errors import PersistenceError

    index = SNTIndex.build(
        _small_world(), alphabet_size=N_EDGES + 1, partition_days=1
    )
    target = tmp_path / "idx"
    index.save(target)
    np.save(
        target / "payload" / "perm_tod.npy", np.zeros(3, dtype=np.int64)
    )
    with pytest.raises(PersistenceError, match="perm_tod"):
        SNTIndex.load(target)
