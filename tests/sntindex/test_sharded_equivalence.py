"""Sharded-index equivalence: bit-identical to the monolithic SNT-index.

The ``ShardedSNTIndex`` contract (ISSUE 2): over the same corpus and
``partition_days``, every trip query answers *bit-identically* to the
monolithic index — histograms, estimated means, per-sub-query value
arrays, scan counts — across partitioners, splitters, and estimator
modes; including fixed intervals straddling shard boundaries, global
beta cuts that span shards, and queries after ``append()`` through the
staging shard.  Random workloads are drawn with hypothesis; the
deterministic tests pin the seams (append ordering, epoch-based cache
invalidation, persistence, parallel builds, process fan-out).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    CardinalityEstimator,
    EngineConfig,
    FixedInterval,
    PeriodicInterval,
    QueryEngine,
    ShardedSNTIndex,
    SNTIndex,
    StrictPathQuery,
    SubQueryCache,
    TrajectorySet,
    TravelTimeDB,
    TravelTimeService,
    TripRequest,
    generate_dataset,
)
from repro.config import SECONDS_PER_DAY
from repro.errors import IndexError_, PersistenceError, ShardError
from repro.sntindex.sharded import load_any_index, read_any_meta

from tests.typed_api import as_requests, run_trip


PARTITION_DAYS = 7
N_SHARDS = 3
PARTITIONERS = ("pi_1", "pi_Z", "pi_ZC")
SPLITTERS = ("regular", "longest_prefix")
ESTIMATOR_MODES = (None, "ISA", "BT-Fast", "BT-Acc", "CSS-Fast", "CSS-Acc")


@pytest.fixture(scope="module")
def world():
    dataset = generate_dataset("tiny", seed=0)
    mono = SNTIndex.build(
        dataset.trajectories,
        dataset.network.alphabet_size,
        partition_days=PARTITION_DAYS,
    )
    sharded = ShardedSNTIndex.build(
        dataset.trajectories,
        dataset.network.alphabet_size,
        n_shards=N_SHARDS,
        partition_days=PARTITION_DAYS,
    )
    trips = [tr for tr in dataset.trajectories if len(tr) >= 6]
    return dataset, mono, sharded, trips


@pytest.fixture(scope="module")
def engines(world):
    """One (monolithic, sharded) engine pair per configuration, cached."""
    dataset, mono, sharded, _ = world
    cache = {}

    def pair(partitioner: str, splitter: str, mode):
        key = (partitioner, splitter, mode)
        if key not in cache:
            cache[key] = tuple(
                QueryEngine(
                    index,
                    dataset.network,
                    EngineConfig(partitioner=partitioner, splitter=splitter),
                    estimator=(
                        CardinalityEstimator(index, mode)
                        if mode is not None
                        else None
                    ),
                )
                for index in (mono, sharded)
            )
        return cache[key]

    return pair


def assert_bit_identical(expected, actual):
    assert actual.histogram == expected.histogram
    assert actual.histogram.as_dict() == expected.histogram.as_dict()
    assert actual.estimated_mean == expected.estimated_mean
    assert actual.n_index_scans == expected.n_index_scans
    assert actual.n_estimator_skips == expected.n_estimator_skips
    assert len(actual.outcomes) == len(expected.outcomes)
    for out_expected, out_actual in zip(expected.outcomes, actual.outcomes):
        assert out_actual.query == out_expected.query
        assert np.array_equal(out_actual.values, out_expected.values)
        assert out_actual.histogram == out_expected.histogram
        assert out_actual.from_fallback == out_expected.from_fallback


# --------------------------------------------------------------------- #
# Structure
# --------------------------------------------------------------------- #


def test_shard_structure_matches_monolithic(world):
    dataset, mono, sharded, trips = world
    assert sharded.n_shards == N_SHARDS
    assert sharded.n_partitions == mono.n_partitions
    assert (sharded.t_min, sharded.t_max) == (mono.t_min, mono.t_max)
    assert sharded.alphabet_size == mono.alphabet_size
    for trip in trips[:50]:
        assert sharded.isa_ranges(trip.path) == mono.isa_ranges(trip.path)
        assert sharded.path_traversal_count(
            trip.path
        ) == mono.path_traversal_count(trip.path)


def test_user_container_matches_monolithic(world):
    dataset, mono, sharded, _ = world
    from repro.errors import MissingUserError, UnknownTrajectoryError

    max_id = mono.users.size - 1
    for traj_id in range(0, max_id + 1, max(1, max_id // 200)):
        assert sharded.has_trajectory(traj_id) == mono.has_trajectory(
            traj_id
        )
        if mono.has_trajectory(traj_id):
            assert sharded.user_of(traj_id) == mono.user_of(traj_id)
        else:
            with pytest.raises(MissingUserError):
                sharded.user_of(traj_id)
    with pytest.raises(UnknownTrajectoryError):
        sharded.user_of(max_id + 1)
    with pytest.raises(UnknownTrajectoryError):
        sharded.user_of(-1)


def test_edge_stats_match_monolithic(world):
    dataset, mono, sharded, trips = world
    lo, hi = mono.t_min, (mono.t_min + mono.t_max) // 2
    for trip in trips[:30]:
        for edge in trip.path[:3]:
            phi_mono = mono.edge_index(edge)
            phi_shard = sharded.edge_index(edge)
            if phi_mono is None:
                assert phi_shard is None
                continue
            assert len(phi_shard) == len(phi_mono)
            assert phi_shard.min_t() == phi_mono.min_t()
            assert phi_shard.max_t() == phi_mono.max_t()
            assert phi_shard.count_fixed(lo, hi) == phi_mono.count_fixed(
                lo, hi
            )
            assert phi_shard.supports_fast_count


# --------------------------------------------------------------------- #
# Random workloads (hypothesis)
# --------------------------------------------------------------------- #


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_random_workloads_bit_identical(world, engines, data):
    dataset, mono, sharded, trips = world
    trip = trips[data.draw(st.integers(0, len(trips) - 1), label="trip")]
    partitioner = data.draw(st.sampled_from(PARTITIONERS))
    splitter = data.draw(st.sampled_from(SPLITTERS))
    mode = data.draw(st.sampled_from(ESTIMATOR_MODES))
    beta = data.draw(st.sampled_from((None, 1, 5, 10, 50)))
    shape = data.draw(
        st.sampled_from(("periodic", "user", "fixed", "fixed-straddle"))
    )

    if shape in ("periodic", "user"):
        width = data.draw(st.sampled_from((900, 3600)))
        interval = PeriodicInterval.around(trip.start_time, width)
        user = trip.user_id if shape == "user" else None
    elif shape == "fixed":
        interval = FixedInterval(mono.t_min, mono.t_max)
        user = None
    else:
        # Straddle a shard boundary: the window is centred on the first
        # shard's upper traversal-time bound.
        boundary = sharded.router.entries[0].t_hi
        half = data.draw(st.sampled_from((3600, SECONDS_PER_DAY)))
        interval = FixedInterval(boundary - half, boundary + half)
        user = None

    query = StrictPathQuery(
        path=trip.path, interval=interval, user=user, beta=beta
    )
    engine_mono, engine_sharded = engines(partitioner, splitter, mode)
    expected = run_trip(engine_mono, query, exclude_ids=(trip.traj_id,))
    actual = run_trip(engine_sharded, query, exclude_ids=(trip.traj_id,))
    assert_bit_identical(expected, actual)


# --------------------------------------------------------------------- #
# Routing
# --------------------------------------------------------------------- #


def test_fixed_interval_prunes_shards(world):
    dataset, mono, sharded, trips = world
    first = sharded.router.entries[0]
    last = sharded.router.entries[-1]
    assert first.t_hi < last.t_lo  # slices are disjoint in time
    before = sharded.shard_stats()
    engine = QueryEngine(sharded, dataset.network)
    query = StrictPathQuery(
        path=trips[0].path,
        interval=FixedInterval(first.t_lo, first.t_hi - 1),
        beta=None,
    )
    run_trip(engine, query)
    after = sharded.shard_stats()
    assert after.n_shards_pruned > before.n_shards_pruned
    assert after.per_shard_scans[last.label] == before.per_shard_scans[
        last.label
    ]
    assert after.prune_rate > 0


# --------------------------------------------------------------------- #
# Append / staging
# --------------------------------------------------------------------- #


def _split_by_bucket(dataset, cut_from_end=2):
    trajectories = list(dataset.trajectories)
    t_min = min(tr.start_time for tr in trajectories)
    window = PARTITION_DAYS * SECONDS_PER_DAY
    buckets = sorted({(tr.start_time - t_min) // window
                      for tr in trajectories})
    cut = buckets[-cut_from_end]
    base = [
        tr for tr in trajectories if (tr.start_time - t_min) // window < cut
    ]
    tails = [
        [
            tr
            for tr in trajectories
            if (tr.start_time - t_min) // window == bucket
        ]
        for bucket in buckets
        if bucket >= cut
    ]
    return base, tails


def test_append_is_bit_identical_to_full_rebuild(world):
    dataset, mono, _, trips = world
    base, tails = _split_by_bucket(dataset)
    sharded = ShardedSNTIndex.build(
        TrajectorySet(base),
        dataset.network.alphabet_size,
        n_shards=2,
        partition_days=PARTITION_DAYS,
    )
    epoch = sharded.epoch
    for tail in tails:
        assert sharded.append(tail) == len(tail)
    assert sharded.epoch == epoch + len(tails)
    assert sharded.has_staging
    assert sharded.n_partitions == mono.n_partitions

    engine_mono = QueryEngine(
        mono, dataset.network, EngineConfig(splitter="regular")
    )
    engine_sharded = QueryEngine(
        sharded, dataset.network, EngineConfig(splitter="regular")
    )
    for trip in trips[:20]:
        query = StrictPathQuery(
            path=trip.path,
            interval=PeriodicInterval.around(trip.start_time, 900),
            beta=10,
        )
        assert_bit_identical(
            run_trip(engine_mono, query, exclude_ids=(trip.traj_id,)),
            run_trip(engine_sharded, query, exclude_ids=(trip.traj_id,)),
        )

    # Sealing the staging shard is pure bookkeeping: answers and epoch
    # are unchanged, and the shard count grows by one.
    shards_before = sharded.n_shards
    sharded.seal_staging()
    assert not sharded.has_staging
    assert sharded.n_shards == shards_before
    assert sharded.epoch == epoch + len(tails)
    query = StrictPathQuery(
        path=trips[0].path,
        interval=PeriodicInterval.around(trips[0].start_time, 900),
        beta=10,
    )
    assert_bit_identical(
        run_trip(engine_mono, query, exclude_ids=(trips[0].traj_id,)),
        run_trip(engine_sharded, query, exclude_ids=(trips[0].traj_id,)),
    )


def test_append_rejects_misuse(world):
    dataset, _, _, _ = world
    base, tails = _split_by_bucket(dataset)
    sharded = ShardedSNTIndex.build(
        TrajectorySet(base),
        dataset.network.alphabet_size,
        n_shards=2,
        partition_days=PARTITION_DAYS,
    )
    epoch = sharded.epoch
    # Backfilling into a sealed window is refused...
    with pytest.raises(ShardError):
        sharded.append([base[0]])
    # ... as are id collisions with indexed trajectories ...
    with pytest.raises(ShardError):
        sharded.append([base[-1]])
    # ... and duplicate ids within one batch.
    with pytest.raises(ShardError):
        sharded.append([tails[0][0], tails[0][0]])
    assert sharded.epoch == epoch  # failed appends leave the index alone
    assert sharded.append([]) == 0
    assert sharded.epoch == epoch


def test_build_rejects_misconfiguration(world):
    dataset, _, _, _ = world
    with pytest.raises(ShardError):
        ShardedSNTIndex.build(
            dataset.trajectories,
            dataset.network.alphabet_size,
            partition_days=None,
        )
    with pytest.raises(ShardError):
        ShardedSNTIndex.build(
            dataset.trajectories,
            dataset.network.alphabet_size,
            n_shards=0,
            partition_days=PARTITION_DAYS,
        )
    with pytest.raises(IndexError_):
        ShardedSNTIndex.build(
            TrajectorySet([]),
            dataset.network.alphabet_size,
            partition_days=PARTITION_DAYS,
        )


def test_append_invalidates_shared_cache(world):
    """Post-append answers through a warm cache match a fresh rebuild.

    Without the epoch-based invalidation the service would keep serving
    pre-append histograms for repeated sub-paths — the comparison against
    the from-scratch monolithic index over the combined corpus would
    fail.
    """
    dataset, mono, _, trips = world
    base, tails = _split_by_bucket(dataset)
    sharded = ShardedSNTIndex.build(
        TrajectorySet(base),
        dataset.network.alphabet_size,
        n_shards=2,
        partition_days=PARTITION_DAYS,
    )
    cache = SubQueryCache()
    db = TravelTimeDB(sharded, dataset.network, cache=cache)
    queries = [
        StrictPathQuery(
            path=trip.path,
            interval=PeriodicInterval.around(trip.start_time, 900),
            beta=10,
        )
        for trip in trips[:10]
    ]
    db.query_many(as_requests(queries))  # warm the cache (pre-append state)
    assert cache.stats().ranges.size > 0

    for tail in tails:
        sharded.append(tail)
    post_append = db.query_many(as_requests(queries))

    engine_mono = QueryEngine(mono, dataset.network)
    for query, actual in zip(queries, post_append):
        assert_bit_identical(run_trip(engine_mono, query), actual)


def test_router_stats_survive_appends(world):
    dataset, _, _, _ = world
    base, tails = _split_by_bucket(dataset)
    sharded = ShardedSNTIndex.build(
        TrajectorySet(base),
        dataset.network.alphabet_size,
        n_shards=2,
        partition_days=PARTITION_DAYS,
    )
    engine = QueryEngine(sharded, dataset.network)
    first = sharded.router.entries[0]
    query = StrictPathQuery(
        path=base[0].path,
        interval=FixedInterval(first.t_lo, first.t_hi - 1),
        beta=None,
    )
    run_trip(engine, query)
    before = sharded.shard_stats()
    assert before.n_dispatches > 0 and before.n_shards_pruned > 0
    for tail in tails:
        sharded.append(tail)
    after = sharded.shard_stats()
    assert after.n_dispatches == before.n_dispatches
    assert after.n_shards_pruned == before.n_shards_pruned
    assert after.n_shard_scans == before.n_shard_scans
    sharded.seal_staging()
    assert sharded.shard_stats().n_dispatches == before.n_dispatches


def test_module_level_procedures_route_through_sharded_index(world):
    """The top-level retrieval functions accept a sharded reader too."""
    from repro import count_matches, get_travel_times

    dataset, mono, sharded, trips = world
    for trip in trips[:10]:
        query = StrictPathQuery(
            path=trip.path,
            interval=PeriodicInterval.around(trip.start_time, 900),
            beta=10,
        )
        expected = get_travel_times(mono, query)
        actual = get_travel_times(sharded, query)
        assert np.array_equal(actual.values, expected.values)
        assert actual.n_matched == expected.n_matched
        assert count_matches(
            sharded, trip.path, query.interval, limit=5
        ) == count_matches(mono, trip.path, query.interval, limit=5)


def test_count_matches_limit_does_not_overcount_scans(world):
    """The limit early-return must not claim scans on unreached shards."""
    dataset, _, _, trips = world
    sharded = ShardedSNTIndex.build(
        dataset.trajectories,
        dataset.network.alphabet_size,
        n_shards=N_SHARDS,
        partition_days=PARTITION_DAYS,
    )
    # A single-edge path over the full history matches plenty, so a
    # limit of 1 is satisfied by the first shard alone.
    edge = trips[0].path[0]
    count = sharded.count_matches(
        (edge,), FixedInterval(0, sharded.t_max), limit=1
    )
    assert count == 1
    stats = sharded.shard_stats()
    assert stats.n_dispatches == 1
    assert stats.n_shard_scans == 1  # later shards were never reached


def test_manifest_scalar_corruption_rejected_before_shard_load(
    world, tmp_path
):
    import json

    dataset, _, sharded, _ = world
    target = sharded.save(tmp_path / "sharded-index")
    manifest_path = target / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest["partition_days"] = None
    manifest_path.write_text(json.dumps(manifest))
    # Poison a shard payload: were the shards read before the scalar
    # checks, the error would name the payload, not partition_days.
    (target / "shard_0000" / "payload" / "users.npy").write_bytes(b"garbage")
    with pytest.raises(PersistenceError, match="partition_days"):
        load_any_index(target)


def test_foreign_shard_in_manifest_rejected(world, tmp_path):
    """A shard copied in from a different build must not load."""
    import shutil

    dataset, _, sharded, _ = world
    target = sharded.save(tmp_path / "seven-day")
    other = ShardedSNTIndex.build(
        dataset.trajectories,
        dataset.network.alphabet_size,
        n_shards=N_SHARDS,
        partition_days=3,  # same world, different partition layout
    )
    other_dir = other.save(tmp_path / "three-day")
    shutil.rmtree(target / "shard_0001")
    shutil.copytree(other_dir / "shard_0001", target / "shard_0001")
    with pytest.raises(PersistenceError, match="different build"):
        load_any_index(target)


def test_spawn_empty_copies_cache_bounds():
    cache = SubQueryCache(max_ranges=7, max_results=5, max_histograms=3)
    fresh = cache.spawn_empty()
    stats = fresh.stats()
    assert (
        stats.ranges.max_size,
        stats.results.max_size,
        stats.histograms.max_size,
    ) == (7, 5, 3)
    assert stats.ranges.size == 0


def test_cache_sync_epoch_clears_sections():
    class FakeIndex:
        epoch = 0

    index = FakeIndex()
    cache = SubQueryCache()
    cache.bind_index(index, None)
    cache.put_ranges((1, 2), [(0, 0, 1)])
    assert cache.get_ranges((1, 2)) is not None
    cache.sync_epoch(index)  # same epoch: nothing dropped
    assert cache.stats().ranges.size == 1
    index.epoch += 1
    cache.sync_epoch(index)
    assert cache.stats().ranges.size == 0


# --------------------------------------------------------------------- #
# Parallel build / process fan-out
# --------------------------------------------------------------------- #


def test_parallel_build_equals_inline_build(world):
    dataset, mono, _, trips = world
    parallel = ShardedSNTIndex.build(
        dataset.trajectories,
        dataset.network.alphabet_size,
        n_shards=4,
        partition_days=PARTITION_DAYS,
        build_workers=2,
    )
    assert parallel.n_partitions == mono.n_partitions
    engine_mono = QueryEngine(mono, dataset.network)
    engine_parallel = QueryEngine(parallel, dataset.network)
    for trip in trips[:10]:
        assert parallel.isa_ranges(trip.path) == mono.isa_ranges(trip.path)
        query = StrictPathQuery(
            path=trip.path,
            interval=PeriodicInterval.around(trip.start_time, 900),
            beta=10,
        )
        assert_bit_identical(
            run_trip(engine_mono, query, exclude_ids=(trip.traj_id,)),
            run_trip(engine_parallel, query, exclude_ids=(trip.traj_id,)),
        )


def test_process_fanout_matches_threaded_batches(world):
    dataset, mono, sharded, trips = world
    db = TravelTimeDB(sharded, dataset.network, cache=None)
    queries = [
        StrictPathQuery(
            path=trip.path,
            interval=PeriodicInterval.around(trip.start_time, 900),
            beta=10,
        )
        for trip in trips[:8]
    ]
    exclude_ids = [(trip.traj_id,) for trip in trips[:8]]
    requests = as_requests(queries, exclude_ids)
    threaded = db.query_many(requests)
    forked = db.query_many(requests, n_workers=2, use_processes=True)
    for expected, actual in zip(threaded, forked):
        assert_bit_identical(expected, actual)


# --------------------------------------------------------------------- #
# Persistence
# --------------------------------------------------------------------- #


def test_sharded_persistence_roundtrip(world, tmp_path):
    dataset, mono, _, trips = world
    base, tails = _split_by_bucket(dataset)
    sharded = ShardedSNTIndex.build(
        TrajectorySet(base),
        dataset.network.alphabet_size,
        n_shards=2,
        partition_days=PARTITION_DAYS,
    )
    for tail in tails:
        sharded.append(tail)
    target = sharded.save(
        tmp_path / "sharded-index", extra={"note": "test"}
    )

    layout, manifest = read_any_meta(target)
    assert layout == "sharded"
    assert manifest["epoch"] == sharded.epoch
    assert manifest["extra"] == {"note": "test"}

    loaded = load_any_index(
        target, expected_alphabet_size=dataset.network.alphabet_size
    )
    assert isinstance(loaded, ShardedSNTIndex)
    assert loaded.epoch == sharded.epoch
    assert loaded.n_partitions == mono.n_partitions
    assert loaded.has_staging

    engine_mono = QueryEngine(mono, dataset.network)
    engine_loaded = QueryEngine(loaded, dataset.network)
    for trip in trips[:10]:
        query = StrictPathQuery(
            path=trip.path,
            interval=PeriodicInterval.around(trip.start_time, 900),
            beta=10,
        )
        assert_bit_identical(
            run_trip(engine_mono, query, exclude_ids=(trip.traj_id,)),
            run_trip(engine_loaded, query, exclude_ids=(trip.traj_id,)),
        )

    # Appends keep working after a cold start: the staged tail was
    # persisted alongside the staging shard.
    assert loaded._staged  # noqa: SLF001 - intentional white-box check
    with pytest.raises(ShardError):
        loaded.append([base[0]])


def test_load_any_index_detects_monolithic(world, tmp_path):
    dataset, mono, _, _ = world
    target = mono.save(tmp_path / "mono-index")
    layout, _ = read_any_meta(target)
    assert layout == "monolithic"
    loaded = load_any_index(
        target, expected_alphabet_size=dataset.network.alphabet_size
    )
    assert isinstance(loaded, SNTIndex)


def test_load_any_index_rejects_unknown_dir(tmp_path):
    (tmp_path / "stray.txt").write_text("not an index")
    with pytest.raises(PersistenceError):
        read_any_meta(tmp_path)
    with pytest.raises(PersistenceError):
        load_any_index(tmp_path)


def test_sharded_load_rejects_wrong_alphabet(world, tmp_path):
    dataset, _, sharded, _ = world
    target = sharded.save(tmp_path / "sharded-index")
    with pytest.raises(PersistenceError, match="alphabet"):
        load_any_index(
            target,
            expected_alphabet_size=dataset.network.alphabet_size + 1,
        )


def test_service_cold_start_from_sharded_dir(world, tmp_path):
    dataset, mono, sharded, trips = world
    import repro

    target = sharded.save(tmp_path / "sharded-index")
    db = repro.open_db(target, network=dataset.network)
    engine_mono = QueryEngine(mono, dataset.network)
    query = StrictPathQuery(
        path=trips[0].path,
        interval=PeriodicInterval.around(trips[0].start_time, 900),
        beta=10,
    )
    assert_bit_identical(
        run_trip(engine_mono, query, exclude_ids=(trips[0].traj_id,)),
        db.query(
            TripRequest.from_spq(query, exclude_ids=(trips[0].traj_id,))
        ),
    )


# --------------------------------------------------------------------- #
# Shard lifecycle (ISSUE 9): object-store page-in + compacted layouts
# --------------------------------------------------------------------- #


def test_object_store_pagein_answers_identically(world, tmp_path):
    """Saving to and loading from an ``object://`` store is transparent:
    the paged-in index answers bit-identically to the monolithic one."""
    dataset, mono, sharded, trips = world
    uri = f"object://{tmp_path}/remote?cache={tmp_path}/cache"
    sharded.save(uri, extra={"note": "object-store"})

    layout, manifest = read_any_meta(uri)
    assert layout == "sharded"
    assert manifest["extra"] == {"note": "object-store"}

    loaded = load_any_index(
        uri, expected_alphabet_size=dataset.network.alphabet_size
    )
    assert isinstance(loaded, ShardedSNTIndex)
    assert loaded.n_shards == sharded.n_shards

    engine_mono = QueryEngine(mono, dataset.network)
    engine_loaded = QueryEngine(loaded, dataset.network)
    for trip in trips[:10]:
        query = StrictPathQuery(
            path=trip.path,
            interval=PeriodicInterval.around(trip.start_time, 900),
            beta=10,
        )
        assert_bit_identical(
            run_trip(engine_mono, query, exclude_ids=(trip.traj_id,)),
            run_trip(engine_loaded, query, exclude_ids=(trip.traj_id,)),
        )


def test_monolithic_object_store_roundtrip(world, tmp_path):
    dataset, mono, _, trips = world
    uri = f"object://{tmp_path}/remote?cache={tmp_path}/cache"
    mono.save(uri)
    loaded = load_any_index(
        uri, expected_alphabet_size=dataset.network.alphabet_size
    )
    assert isinstance(loaded, SNTIndex)
    engine_mono = QueryEngine(mono, dataset.network)
    engine_loaded = QueryEngine(loaded, dataset.network)
    query = StrictPathQuery(
        path=trips[0].path,
        interval=PeriodicInterval.around(trips[0].start_time, 900),
    )
    assert_bit_identical(
        run_trip(engine_mono, query), run_trip(engine_loaded, query)
    )


def test_compacted_saved_layout_equivalent_across_modes(world, tmp_path):
    """Compact on disk, reload, and run the estimator-mode sweep: the
    compacted layout must stay inside the equivalence envelope."""
    from repro.sntindex.compaction import compact_index_dir

    dataset, mono, sharded, trips = world
    target = sharded.save(tmp_path / "to-compact")
    report = compact_index_dir(target)
    assert report.did_compact
    loaded = load_any_index(
        target, expected_alphabet_size=dataset.network.alphabet_size
    )
    assert loaded.n_shards < sharded.n_shards

    for mode in ESTIMATOR_MODES:
        config = EngineConfig(estimator_mode=mode)
        engine_compacted = QueryEngine(
            loaded, dataset.network, config=config
        )
        engine_oracle = QueryEngine(mono, dataset.network, config=config)
        for trip in trips[:5]:
            query = StrictPathQuery(
                path=trip.path,
                interval=PeriodicInterval.around(trip.start_time, 900),
                beta=10,
            )
            assert_bit_identical(
                run_trip(engine_oracle, query, exclude_ids=(trip.traj_id,)),
                run_trip(
                    engine_compacted, query, exclude_ids=(trip.traj_id,)
                ),
            )
