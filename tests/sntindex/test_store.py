"""Unit tests for the shard-store backends (ISSUE 9 tentpole).

The store layer must be testable without building a single index:
everything here exercises byte-level contracts — URI dispatch, key
hygiene, the local page-in cache's etag revalidation and LRU eviction,
and the install ordering that keeps a remote namespace atomic.
"""

import json

import pytest

from repro.errors import PersistenceError, StoreError
from repro.sntindex.store import (
    LocalDirStore,
    ObjectStore,
    as_store,
    is_store_uri,
)


# --------------------------------------------------------------------- #
# URI dispatch
# --------------------------------------------------------------------- #


class TestAsStore:
    def test_bare_path_is_local(self, tmp_path):
        store = as_store(tmp_path / "index")
        assert isinstance(store, LocalDirStore)
        assert store.local_anchor() == tmp_path / "index"

    def test_file_uri_is_local(self, tmp_path):
        store = as_store(f"file://{tmp_path}/index")
        assert isinstance(store, LocalDirStore)
        assert store.local_anchor() == tmp_path / "index"

    def test_file_colon_form(self, tmp_path):
        store = as_store(f"file:{tmp_path}/index")
        assert isinstance(store, LocalDirStore)
        assert store.local_anchor() == tmp_path / "index"

    def test_object_uri(self, tmp_path):
        store = as_store(
            f"object://{tmp_path}/remote?cache={tmp_path}/cache"
        )
        assert isinstance(store, ObjectStore)

    def test_store_passthrough(self, tmp_path):
        store = LocalDirStore(tmp_path)
        assert as_store(store) is store

    def test_unknown_scheme_rejected(self):
        with pytest.raises(StoreError, match="unknown store URI scheme"):
            as_store("s3://bucket/prefix")

    def test_unknown_object_param_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="parameter"):
            as_store(f"object://{tmp_path}/r?ttl=5")

    def test_store_error_is_persistence_error(self):
        # CLI/main() catches ReproError; the store taxonomy must sit
        # under PersistenceError so a bad URI exits 1, not a traceback.
        assert issubclass(StoreError, PersistenceError)

    def test_is_store_uri(self, tmp_path):
        assert is_store_uri("file:/x")
        assert is_store_uri("object://x")
        assert not is_store_uri(str(tmp_path))
        assert not is_store_uri("plain/relative/dir")


class TestKeyHygiene:
    @pytest.mark.parametrize("key", ["/abs/path", "../escape", "a/../.."])
    def test_traversal_rejected(self, tmp_path, key):
        store = LocalDirStore(tmp_path)
        with pytest.raises(StoreError):
            store.get(key)


# --------------------------------------------------------------------- #
# LocalDirStore
# --------------------------------------------------------------------- #


class TestLocalDirStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = LocalDirStore(tmp_path / "root")
        store.put("a/b.txt", b"payload")
        assert store.get("a/b.txt") == b"payload"
        assert store.exists("a/b.txt")
        assert not store.exists("missing")

    def test_list_prefix(self, tmp_path):
        store = LocalDirStore(tmp_path / "root")
        store.put("x/1", b"1")
        store.put("x/2", b"2")
        store.put("y/3", b"3")
        assert sorted(store.list("x")) == ["x/1", "x/2"]
        assert len(store.list("")) == 3

    def test_localize_is_identity(self, tmp_path):
        store = LocalDirStore(tmp_path / "root")
        store.put("sub/file", b"z")
        assert store.localize("sub") == tmp_path / "root" / "sub"

    def test_etag_changes_with_content(self, tmp_path):
        store = LocalDirStore(tmp_path / "root")
        store.put("k", b"one")
        first = store.etag("k")
        store.put("k", b"three!!")
        assert store.etag("k") != first

    def test_install_refuses_foreign_directory(self, tmp_path):
        target = tmp_path / "occupied"
        target.mkdir()
        (target / "precious.txt").write_text("user data")
        store = LocalDirStore(target)
        with pytest.raises(PersistenceError, match="refusing"):
            store.install(
                "",
                marker_file="meta.json",
                writer=lambda d: (d / "meta.json").write_text("{}"),
                what="saved SNT-index",
            )
        assert (target / "precious.txt").exists()

    def test_install_swaps_atomically(self, tmp_path):
        target = tmp_path / "index"
        store = LocalDirStore(target)

        def writer(directory):
            (directory / "meta.json").write_text('{"v": 1}')
            (directory / "blob").write_bytes(b"abc")

        store.install("", marker_file="meta.json", writer=writer,
                      what="saved SNT-index")
        assert json.loads((target / "meta.json").read_text()) == {"v": 1}

        def writer2(directory):
            (directory / "meta.json").write_text('{"v": 2}')

        store.install("", marker_file="meta.json", writer=writer2,
                      what="saved SNT-index")
        assert json.loads((target / "meta.json").read_text()) == {"v": 2}
        assert not (target / "blob").exists()  # old payload fully gone


# --------------------------------------------------------------------- #
# ObjectStore
# --------------------------------------------------------------------- #


def _object_store(tmp_path, **kwargs):
    return ObjectStore(
        tmp_path / "remote", cache_dir=tmp_path / "cache", **kwargs
    )


class TestObjectStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = _object_store(tmp_path)
        store.put("a/b", b"bytes")
        assert store.get("a/b") == b"bytes"
        assert store.exists("a/b")

    def test_missing_object_raises(self, tmp_path):
        store = _object_store(tmp_path)
        with pytest.raises(StoreError, match="no object"):
            store.get("nope")

    def test_list_skips_internal_files(self, tmp_path):
        store = _object_store(tmp_path)
        store.put("visible", b"1")
        (tmp_path / "remote" / ".hidden").write_bytes(b"x")
        assert store.list("") == ["visible"]

    def test_localize_pages_in_and_revalidates(self, tmp_path):
        store = _object_store(tmp_path)
        store.put("p/data", b"old")
        local = store.localize("p")
        assert (local / "data").read_bytes() == b"old"
        # Remote changes; a fresh localize must see them (etag diff).
        store.put("p/data", b"new-longer")
        store.put("p/extra", b"added")
        local = store.localize("p")
        assert (local / "data").read_bytes() == b"new-longer"
        assert (local / "extra").read_bytes() == b"added"

    def test_localize_drops_stale_local_files(self, tmp_path):
        store = _object_store(tmp_path)
        store.put("p/keep", b"k")
        store.put("p/drop", b"d")
        local = store.localize("p")
        assert (local / "drop").exists()
        store.delete("p/drop")
        local = store.localize("p")
        assert not (local / "drop").exists()
        assert (local / "keep").exists()

    def test_eviction_respects_pinned_prefix(self, tmp_path):
        store = _object_store(tmp_path, cache_bytes=64)
        store.put("hot/a", b"x" * 40)
        store.put("cold/b", b"y" * 40)
        hot = store.localize("hot")     # pinned: live mmaps may point in
        store.localize("cold")          # pushes total over the budget
        assert (hot / "a").exists()     # pinned prefix never evicted

    def test_install_roundtrip_and_cache_invalidation(self, tmp_path):
        store = _object_store(tmp_path)

        def writer(directory):
            (directory / "manifest.json").write_text('{"epoch": 0}')
            sub = directory / "shard_0000"
            sub.mkdir()
            (sub / "payload").write_bytes(b"v1")

        store.install("", marker_file="manifest.json", writer=writer,
                      what="saved sharded SNT-index")
        assert store.get("shard_0000/payload") == b"v1"
        local = store.localize("")
        assert (local / "shard_0000" / "payload").read_bytes() == b"v1"

        def writer2(directory):
            (directory / "manifest.json").write_text('{"epoch": 1}')
            sub = directory / "shard_9999"
            sub.mkdir()
            (sub / "payload").write_bytes(b"v2")

        store.install("", marker_file="manifest.json", writer=writer2,
                      what="saved sharded SNT-index")
        # Remote: old payload object gone, new one present.
        assert not store.exists("shard_0000/payload")
        assert store.get("shard_9999/payload") == b"v2"
        # A fresh localize must not resurrect the pre-install tree.
        local = store.localize("")
        assert not (local / "shard_0000").exists()
        assert (local / "shard_9999" / "payload").read_bytes() == b"v2"
        assert json.loads(
            (local / "manifest.json").read_text()
        ) == {"epoch": 1}

    def test_install_requires_marker(self, tmp_path):
        store = _object_store(tmp_path)
        with pytest.raises(StoreError, match="marker"):
            store.install(
                "",
                marker_file="manifest.json",
                writer=lambda d: (d / "other").write_bytes(b"x"),
                what="saved sharded SNT-index",
            )

    def test_install_overwrite_guard(self, tmp_path):
        store = _object_store(tmp_path)
        store.put("unrelated", b"user data")
        with pytest.raises(StoreError, match="refusing"):
            store.install(
                "",
                marker_file="manifest.json",
                writer=lambda d: (d / "manifest.json").write_text("{}"),
                what="saved sharded SNT-index",
            )
        assert store.get("unrelated") == b"user data"

    def test_default_cache_dir_is_stable(self, tmp_path):
        a = ObjectStore(tmp_path / "remote")
        b = ObjectStore(tmp_path / "remote")
        assert a.local_anchor() == b.local_anchor()
        c = ObjectStore(tmp_path / "other")
        assert c.local_anchor() != a.local_anchor()
