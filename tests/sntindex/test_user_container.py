"""The associative container ``U: d -> u`` distinguishes unknown ids
from gaps (ISSUE 1 satellite fix).

``U`` is a dense array over ``[0, max id]`` initialised to ``-1``; an id
inside the range that no trajectory used is a *gap*, not an unknown id.
``user_of`` must tell the two apart instead of returning the ``-1``
sentinel or raising one blanket error.
"""

import pytest

from repro import SNTIndex
from repro.errors import IndexError_, MissingUserError, UnknownTrajectoryError
from repro.trajectories import Trajectory, TrajectoryPoint, TrajectorySet

A, B, E = 1, 2, 5


@pytest.fixture(scope="module")
def gappy_index():
    """Ids 0 and 3 exist; 1 and 2 are gaps inside the dense id space."""
    trajectories = TrajectorySet(
        [
            Trajectory(0, 7, [TrajectoryPoint(A, 0, 3.0), TrajectoryPoint(B, 3, 4.0)]),
            Trajectory(3, 9, [TrajectoryPoint(A, 6, 3.0), TrajectoryPoint(E, 9, 4.0)]),
        ]
    )
    return SNTIndex.build(trajectories, alphabet_size=7)


def test_known_ids_resolve(gappy_index):
    assert gappy_index.user_of(0) == 7
    assert gappy_index.user_of(3) == 9


def test_out_of_range_id_is_unknown(gappy_index):
    with pytest.raises(UnknownTrajectoryError) as excinfo:
        gappy_index.user_of(4)
    assert excinfo.value.traj_id == 4
    with pytest.raises(UnknownTrajectoryError):
        gappy_index.user_of(-1)


def test_gap_id_has_no_user(gappy_index):
    with pytest.raises(MissingUserError) as excinfo:
        gappy_index.user_of(1)
    assert excinfo.value.traj_id == 1
    with pytest.raises(MissingUserError):
        gappy_index.user_of(2)


def test_both_errors_remain_index_errors(gappy_index):
    """Callers catching the old blanket ``IndexError_`` keep working."""
    for bad_id in (-5, 1, 99):
        with pytest.raises(IndexError_):
            gappy_index.user_of(bad_id)


def test_has_trajectory(gappy_index):
    assert gappy_index.has_trajectory(0)
    assert gappy_index.has_trajectory(3)
    assert not gappy_index.has_trajectory(1)
    assert not gappy_index.has_trajectory(2)
    assert not gappy_index.has_trajectory(4)
    assert not gappy_index.has_trajectory(-1)


def test_gap_survives_save_load(gappy_index, tmp_path):
    gappy_index.save(tmp_path / "index")
    loaded = SNTIndex.load(tmp_path / "index")
    assert loaded.user_of(0) == 7
    with pytest.raises(MissingUserError):
        loaded.user_of(1)
    with pytest.raises(UnknownTrajectoryError):
        loaded.user_of(4)
