"""Tests for the B+-tree multimap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.temporal.btree import BPlusTree


def test_empty_tree():
    tree = BPlusTree()
    assert len(tree) == 0
    assert list(tree.items()) == []
    assert tree.range_values(0, 100) == []
    assert tree.min_key() is None
    assert tree.max_key() is None


def test_single_insert():
    tree = BPlusTree()
    tree.insert(5, 50)
    assert list(tree.items()) == [(5, 50)]
    assert tree.min_key() == 5
    assert tree.max_key() == 5


def test_duplicate_keys_preserve_insertion_order():
    tree = BPlusTree(order=4)
    for value in range(10):
        tree.insert(7, value)
    assert [v for _, v in tree.items()] == list(range(10))


def test_range_scan_half_open():
    tree = BPlusTree(order=4)
    for key in range(20):
        tree.insert(key, key * 10)
    assert tree.range_values(5, 9) == [50, 60, 70, 80]
    assert tree.range_values(5, 5) == []
    assert tree.range_values(19, 100) == [190]
    assert tree.range_values(-5, 0) == []


def test_range_count():
    tree = BPlusTree(order=4)
    for key in [1, 1, 1, 2, 5, 5, 9]:
        tree.insert(key, 0)
    assert tree.range_count(1, 2) == 3
    assert tree.range_count(1, 6) == 6
    assert tree.range_count(3, 5) == 0


def test_splits_keep_invariants():
    tree = BPlusTree(order=4)
    for key in range(500):
        tree.insert((key * 37) % 101, key)
    tree.validate()
    assert len(tree) == 500
    assert tree.height > 1


def test_bulk_load_matches_inserts():
    pairs = [(k % 13, k) for k in range(100)]
    tree = BPlusTree.bulk_load(pairs, order=8)
    tree.validate()
    assert len(tree) == 100
    keys = [k for k, _ in tree.items()]
    assert keys == sorted(keys)


def test_order_too_small_rejected():
    with pytest.raises(ValueError):
        BPlusTree(order=3)


def test_descending_inserts():
    tree = BPlusTree(order=4)
    for key in range(100, 0, -1):
        tree.insert(key, key)
    tree.validate()
    assert [k for k, _ in tree.items()] == list(range(1, 101))


def test_height_grows_logarithmically():
    tree = BPlusTree(order=8)
    for key in range(1000):
        tree.insert(key, key)
    # ~log_4(1000) levels; generous bound.
    assert tree.height <= 7


def test_size_in_bytes_grows():
    small = BPlusTree()
    big = BPlusTree()
    for key in range(10):
        small.insert(key, key)
    for key in range(1000):
        big.insert(key, key)
    assert big.size_in_bytes() > small.size_in_bytes()


@settings(max_examples=80, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 1000)), max_size=200))
def test_property_items_sorted_and_complete(pairs):
    tree = BPlusTree(order=6)
    for key, value in pairs:
        tree.insert(key, value)
    tree.validate()
    items = list(tree.items())
    assert len(items) == len(pairs)
    assert [k for k, _ in items] == sorted(k for k, _ in pairs)


@settings(max_examples=80, deadline=None)
@given(
    st.lists(st.integers(0, 100), max_size=150),
    st.integers(0, 100),
    st.integers(0, 100),
)
def test_property_range_scan_matches_model(keys, lo, hi):
    tree = BPlusTree(order=5)
    for key in keys:
        tree.insert(key, key)
    expected = sorted(k for k in keys if lo <= k < hi)
    assert [k for k, _ in tree.range_scan(lo, hi)] == expected
    assert tree.range_count(lo, hi) == len(expected)
