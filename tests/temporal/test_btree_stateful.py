"""Stateful (model-based) testing of the B+-tree against a sorted-list
model: arbitrary interleavings of inserts and range scans must always
agree."""

import bisect

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.temporal.btree import BPlusTree


class BTreeMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.tree = BPlusTree(order=4)  # small order: frequent splits
        self.model = []  # sorted list of (key, value) by key, stable

    @rule(key=st.integers(0, 60), value=st.integers(0, 10_000))
    def insert(self, key, value):
        self.tree.insert(key, value)
        position = bisect.bisect_right([k for k, _ in self.model], key)
        self.model.insert(position, (key, value))

    @rule(lo=st.integers(-5, 70), hi=st.integers(-5, 70))
    def range_scan_matches(self, lo, hi):
        got = list(self.tree.range_scan(lo, hi))
        want = [(k, v) for k, v in self.model if lo <= k < hi]
        assert got == want

    @rule(lo=st.integers(-5, 70), hi=st.integers(-5, 70))
    def range_count_matches(self, lo, hi):
        assert self.tree.range_count(lo, hi) == sum(
            1 for k, _ in self.model if lo <= k < hi
        )

    @invariant()
    def size_matches(self):
        assert len(self.tree) == len(self.model)

    @invariant()
    def items_sorted_and_complete(self):
        items = list(self.tree.items())
        assert items == self.model

    @invariant()
    def structure_valid(self):
        self.tree.validate()

    @invariant()
    def min_max_match(self):
        if self.model:
            assert self.tree.min_key() == self.model[0][0]
            assert self.tree.max_key() == self.model[-1][0]
        else:
            assert self.tree.min_key() is None


BTreeMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestBTreeStateful = BTreeMachine.TestCase
