"""Tests for the CSS-tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.temporal.css_tree import CSSTree


def test_empty():
    tree = CSSTree(np.empty(0, np.int64))
    assert len(tree) == 0
    assert tree.lower_bound(5) == 0
    assert tree.range_count(0, 10) == 0
    assert tree.min_key() is None
    assert tree.max_key() is None


def test_lower_bound_simple():
    tree = CSSTree(np.array([1, 3, 3, 7, 9]))
    assert tree.lower_bound(0) == 0
    assert tree.lower_bound(1) == 0
    assert tree.lower_bound(2) == 1
    assert tree.lower_bound(3) == 1
    assert tree.lower_bound(4) == 3
    assert tree.lower_bound(9) == 4
    assert tree.lower_bound(10) == 5


def test_duplicates_across_node_boundaries():
    # 100 equal keys guarantee duplicates span many nodes.
    tree = CSSTree(np.array([5] * 100 + [9] * 50), node_keys=4)
    assert tree.lower_bound(5) == 0
    assert tree.lower_bound(6) == 100
    assert tree.lower_bound(9) == 100
    assert tree.range_count(5, 6) == 100
    assert tree.range_count(9, 10) == 50


def test_directory_built_for_large_arrays():
    tree = CSSTree(np.arange(10_000), node_keys=16)
    assert tree.height >= 2
    tree.validate()


def test_unsorted_keys_rejected():
    with pytest.raises(ValueError):
        CSSTree(np.array([3, 1, 2]))


def test_node_keys_too_small():
    with pytest.raises(ValueError):
        CSSTree(np.array([1]), node_keys=1)


def test_range_count_matches_slices():
    keys = np.sort(np.array([4, 8, 8, 8, 15, 16, 23, 42, 42]))
    tree = CSSTree(keys)
    assert tree.range_count(8, 16) == 4
    assert tree.range_count(0, 100) == 9
    assert tree.range_count(42, 43) == 2
    assert tree.range_count(50, 40) == 0


def test_bounds_fast_matches_descent():
    rng = np.random.default_rng(11)
    keys = np.sort(rng.integers(0, 500, size=1000))
    tree = CSSTree(keys, node_keys=8)
    for probe in range(-5, 510, 7):
        assert tree.lower_bound(probe) == int(
            np.searchsorted(keys, probe, side="left")
        )
        lo, hi = tree.bounds_fast(probe, probe + 13)
        assert (lo, hi) == tree.range_bounds(probe, probe + 13)


def test_append_batch():
    tree = CSSTree(np.array([1, 5, 9]), node_keys=4)
    tree.append_batch(np.array([9, 12, 20]))
    tree.validate()
    assert len(tree) == 6
    assert tree.lower_bound(9) == 2
    assert tree.range_count(9, 21) == 4


def test_append_batch_empty_noop():
    tree = CSSTree(np.array([1, 2]))
    tree.append_batch(np.empty(0, np.int64))
    assert len(tree) == 2


def test_append_out_of_order_rejected():
    tree = CSSTree(np.array([5, 10]))
    with pytest.raises(ValueError):
        tree.append_batch(np.array([3]))
    with pytest.raises(ValueError):
        tree.append_batch(np.array([12, 11]))


def test_append_to_empty():
    tree = CSSTree(np.empty(0, np.int64))
    tree.append_batch(np.array([2, 4, 6]))
    assert tree.range_count(2, 7) == 3


def test_size_in_bytes_close_to_raw_keys():
    tree = CSSTree(np.arange(10_000), node_keys=16)
    raw = 8 * 10_000
    assert raw <= tree.size_in_bytes() <= raw * 1.1  # pointer-less directory


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.integers(0, 200), max_size=400),
    st.integers(-10, 210),
    st.sampled_from([2, 3, 4, 16]),
)
def test_property_lower_bound_matches_searchsorted(keys, probe, node_keys):
    arr = np.sort(np.asarray(keys, dtype=np.int64))
    tree = CSSTree(arr, node_keys=node_keys)
    assert tree.lower_bound(probe) == int(np.searchsorted(arr, probe, "left"))


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(0, 100), max_size=300),
    st.integers(0, 100),
    st.integers(0, 100),
)
def test_property_range_count_exact(keys, lo, hi):
    arr = np.sort(np.asarray(keys, dtype=np.int64))
    tree = CSSTree(arr, node_keys=4)
    expected = sum(1 for k in keys if lo <= k < hi)
    assert tree.range_count(lo, hi) == expected
