"""Tests for leaf records and the temporal forest."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SECONDS_PER_DAY
from repro.temporal import EdgeTemporalIndex, TemporalForest, TraversalColumns


def make_columns(ts, tts=None):
    ts = np.asarray(ts, dtype=np.int64)
    n = ts.size
    if tts is None:
        tts = np.full(n, 5.0)
    return TraversalColumns.from_arrays(
        t=ts,
        isa=np.arange(n),
        d=np.arange(n) % 7,
        tt=tts,
        a=np.cumsum(tts),
        seq=np.zeros(n, np.int32),
    )


class TestTraversalColumns:
    def test_from_arrays_sorts_by_time(self):
        columns = make_columns([30, 10, 20])
        assert columns.t.tolist() == [10, 20, 30]
        # isa column permuted consistently
        assert columns.isa.tolist() == [1, 2, 0]

    def test_record_view(self):
        columns = make_columns([10, 20])
        record = columns.record(0)
        assert record.t == 10
        assert record.tt == 5.0
        assert record.w == 0

    def test_iteration(self):
        columns = make_columns([10, 20, 30])
        assert len(list(columns)) == 3

    def test_validate_catches_nonpositive_tt(self):
        columns = make_columns([10, 20], tts=np.array([1.0, 0.0]))
        with pytest.raises(ValueError):
            columns.validate()

    def test_validate_catches_length_mismatch(self):
        columns = make_columns([10, 20])
        columns.isa = np.arange(3)
        with pytest.raises(ValueError):
            columns.validate()

    def test_empty(self):
        columns = TraversalColumns.empty()
        assert len(columns) == 0
        columns.validate()

    def test_size_model_partition_flag(self):
        columns = make_columns([1, 2, 3])
        assert columns.size_in_bytes(True) == columns.size_in_bytes(False) + 6


class TestEdgeTemporalIndex:
    @pytest.fixture(params=["css", "btree"])
    def kind(self, request):
        return request.param

    def test_rows_fixed(self, kind):
        index = EdgeTemporalIndex(make_columns([10, 20, 30, 40]), kind=kind)
        assert index.rows_fixed(15, 35).tolist() == [1, 2]
        assert index.rows_fixed(0, 100).tolist() == [0, 1, 2, 3]
        assert index.rows_fixed(41, 100).tolist() == []
        assert index.rows_fixed(30, 30).tolist() == []

    def test_rows_fixed_empty_index(self, kind):
        index = EdgeTemporalIndex(TraversalColumns.empty(), kind=kind)
        assert index.rows_fixed(0, 100).size == 0

    def test_count_fixed(self, kind):
        index = EdgeTemporalIndex(make_columns([10, 10, 20, 30]), kind=kind)
        assert index.count_fixed(10, 21) == 3

    def test_rows_periodic_basic(self, kind):
        # Two traversals at 08:00 on days 0 and 1; one at 20:00 on day 0.
        eight, twenty = 8 * 3600, 20 * 3600
        ts = [eight, twenty, SECONDS_PER_DAY + eight]
        index = EdgeTemporalIndex(make_columns(ts), kind=kind)
        rows = index.rows_periodic(eight - 900, 1800)
        assert rows.tolist() == [0, 2]

    def test_rows_periodic_midnight_wrap(self, kind):
        # Window 23:30-00:30 wraps past midnight.  Columns are stored
        # sorted by t: noon (row 0), 23:31 (row 1), next-day 00:10 (row 2).
        ts = [
            23 * 3600 + 1800 + 60,  # day 0, 23:31
            SECONDS_PER_DAY + 600,  # day 1, 00:10
            12 * 3600,  # day 0 noon: outside
        ]
        index = EdgeTemporalIndex(make_columns(ts), kind=kind)
        rows = index.rows_periodic(23 * 3600 + 1800, 3600)
        assert sorted(rows.tolist()) == [1, 2]

    def test_rows_periodic_full_day(self, kind):
        index = EdgeTemporalIndex(make_columns([5, 500, 50_000]), kind=kind)
        assert index.rows_periodic(0, SECONDS_PER_DAY).tolist() == [0, 1, 2]
        assert index.rows_periodic(1234, 2 * SECONDS_PER_DAY).tolist() == [0, 1, 2]

    def test_rows_periodic_zero_duration(self, kind):
        index = EdgeTemporalIndex(make_columns([5]), kind=kind)
        assert index.rows_periodic(0, 0).size == 0

    def test_rows_ascending_by_time(self, kind):
        rng = np.random.default_rng(3)
        ts = rng.integers(0, 10 * SECONDS_PER_DAY, size=200)
        index = EdgeTemporalIndex(make_columns(ts), kind=kind)
        rows = index.rows_periodic(3600, 7200)
        times = index.columns.t[rows]
        assert np.all(np.diff(times) >= 0)

    def test_supports_fast_count(self):
        columns = make_columns([1])
        assert EdgeTemporalIndex(columns, kind="css").supports_fast_count
        assert not EdgeTemporalIndex(columns, kind="btree").supports_fast_count

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            EdgeTemporalIndex(make_columns([1]), kind="hash")


def test_css_and_btree_agree_on_periodic_scans():
    rng = np.random.default_rng(17)
    ts = np.sort(rng.integers(0, 30 * SECONDS_PER_DAY, size=500))
    columns = make_columns(ts)
    css = EdgeTemporalIndex(columns, kind="css")
    btree = EdgeTemporalIndex(columns, kind="btree")
    for start, duration in [(0, 3600), (8 * 3600, 1800), (23 * 3600, 7200)]:
        css_rows = set(css.rows_periodic(start, duration).tolist())
        bt_rows = set(btree.rows_periodic(start, duration).tolist())
        assert css_rows == bt_rows


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(0, 5 * SECONDS_PER_DAY), min_size=1, max_size=80),
    st.integers(0, SECONDS_PER_DAY - 1),
    st.integers(1, SECONDS_PER_DAY),
)
def test_property_periodic_scan_matches_model(ts, start_tod, duration):
    columns = make_columns(np.sort(np.asarray(ts)))
    index = EdgeTemporalIndex(columns, kind="css")
    rows = set(index.rows_periodic(start_tod, duration).tolist())
    expected = {
        i
        for i, t in enumerate(columns.t.tolist())
        if (t - start_tod) % SECONDS_PER_DAY < duration
    }
    assert rows == expected


class TestTemporalForest:
    def test_build_and_lookup(self):
        forest = TemporalForest.build(
            {1: make_columns([10, 20]), 5: make_columns([30])}, kind="css"
        )
        assert len(forest) == 2
        assert 1 in forest and 5 in forest and 3 not in forest
        assert forest.get(3) is None
        assert forest.total_records() == 3

    def test_edges_iteration(self):
        forest = TemporalForest.build({2: make_columns([1])})
        assert list(forest.edges()) == [2]

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            TemporalForest(kind="lsm")

    def test_size_in_bytes_positive(self):
        forest = TemporalForest.build({1: make_columns(list(range(50)))})
        assert forest.size_in_bytes() > 0
