"""Tests for the speed-limit and segment-level baselines."""

import pytest

from repro import FixedInterval, SNTIndex
from repro.baselines import SegmentLevelBaseline, SpeedLimitBaseline
from repro.config import SECONDS_PER_DAY
from repro.trajectories import Trajectory, TrajectoryPoint, TrajectorySet

from tests.network.test_graph import build_paper_network

A, B, C, D, E, F = 1, 2, 3, 4, 5, 6


@pytest.fixture(scope="module")
def network():
    return build_paper_network()


@pytest.fixture(scope="module")
def index():
    trajectories = TrajectorySet(
        [
            Trajectory(0, 1, [TrajectoryPoint(A, 0, 3.0), TrajectoryPoint(B, 3, 4.0)]),
            Trajectory(1, 2, [TrajectoryPoint(A, 100, 5.0), TrajectoryPoint(B, 105, 6.0)]),
            Trajectory(
                2,
                1,
                [
                    TrajectoryPoint(A, 10 * 3600, 4.0),
                    TrajectoryPoint(B, 10 * 3600 + 4, 5.0),
                ],
            ),
        ]
    )
    return SNTIndex.build(trajectories, alphabet_size=7)


class TestSpeedLimitBaseline:
    def test_path_estimate(self, network):
        baseline = SpeedLimitBaseline(network)
        # Table 1: A = 29.45 s, B = 8.64 s.
        assert baseline.estimate([A, B]) == pytest.approx(38.1, abs=0.1)

    def test_single_edge(self, network):
        baseline = SpeedLimitBaseline(network)
        assert baseline.estimate([E]) == pytest.approx(7.2, abs=0.05)


class TestSegmentLevelBaseline:
    def test_pooled_means(self, network, index):
        baseline = SegmentLevelBaseline(index, network, bucket_width_s=1.0)
        # Means of per-segment data: A in {3,5,4}, B in {4,6,5}; histogram
        # means use bucket midpoints (+0.5).
        assert baseline.estimate([A, B]) == pytest.approx(4.5 + 5.5, abs=0.01)

    def test_histogram_convolution_has_unit_mass(self, network, index):
        baseline = SegmentLevelBaseline(index, network, bucket_width_s=1.0)
        histogram = baseline.path_histogram([A, B], timestamp=0)
        assert histogram.total == pytest.approx(1.0)
        assert histogram.min_value >= 7.0  # min 3+4

    def test_fallback_to_speed_limit_for_unseen_edge(self, network, index):
        baseline = SegmentLevelBaseline(index, network, bucket_width_s=1.0)
        # Edge F was never traversed: estimateTT(F) = 36 s.
        assert baseline.estimate([F]) == pytest.approx(36.5, abs=0.1)

    def test_tod_conditioning_distinguishes_windows(self, network, index):
        baseline = SegmentLevelBaseline(
            index, network, bucket_width_s=1.0, tod_window_s=900
        )
        early = baseline.segment_histogram(A, timestamp=0)
        late = baseline.segment_histogram(A, timestamp=10 * 3600)
        assert early.as_dict() != late.as_dict()
        # Early window: TT 3 and 5; late window: TT 4.
        assert late.as_dict() == {4: 1}

    def test_tod_window_fallback_to_pooled(self, network, index):
        baseline = SegmentLevelBaseline(
            index, network, bucket_width_s=1.0, tod_window_s=900
        )
        # 05:00 has no data for A: falls back to pooled A data, not the
        # speed limit.
        histogram = baseline.segment_histogram(A, timestamp=5 * 3600)
        assert histogram.total == pytest.approx(3.0)

    def test_n_histograms(self, network, index):
        pooled = SegmentLevelBaseline(index, network, bucket_width_s=1.0)
        conditioned = SegmentLevelBaseline(
            index, network, bucket_width_s=1.0, tod_window_s=900
        )
        assert pooled.n_histograms == 2  # A and B
        assert conditioned.n_histograms >= pooled.n_histograms

    def test_bad_tod_window(self, network, index):
        with pytest.raises(ValueError):
            SegmentLevelBaseline(index, network, tod_window_s=0)
        with pytest.raises(ValueError):
            SegmentLevelBaseline(
                index, network, tod_window_s=2 * SECONDS_PER_DAY
            )

    def test_empty_path_rejected(self, network, index):
        baseline = SegmentLevelBaseline(index, network)
        with pytest.raises(ValueError):
            baseline.path_histogram([], timestamp=0)
