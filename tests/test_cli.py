"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def world_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("world")
    code = main(["generate", "--scale", "tiny", "--seed", "0",
                 "--out", str(path)])
    assert code == 0
    return path


class TestGenerate:
    def test_files_written(self, world_dir):
        assert (world_dir / "network.json").exists()
        assert (world_dir / "trajectories.txt").exists()

    def test_output_mentions_counts(self, world_dir, capsys):
        main(["generate", "--scale", "tiny", "--seed", "1",
              "--out", str(world_dir.parent / "second")])
        out = capsys.readouterr().out
        assert "edges" in out and "trajectories" in out


class TestInfo:
    def test_info_reports_stats(self, world_dir, capsys):
        assert main(["info", "--world", str(world_dir)]) == 0
        out = capsys.readouterr().out
        assert "network:" in out
        assert "trajectories:" in out
        assert "days" in out


class TestQuery:
    def path_from_world(self, world_dir, length=3):
        from repro.network import load_trajectories

        trajectories = load_trajectories(world_dir / "trajectories.txt")
        trajectory = max(trajectories, key=len)
        return ",".join(str(e) for e in trajectory.path[:length])

    def test_fixed_interval_query(self, world_dir, capsys):
        path = self.path_from_world(world_dir)
        assert main(["query", "--world", str(world_dir),
                     "--path", path]) == 0
        out = capsys.readouterr().out
        assert "estimated mean" in out
        assert "sub-queries" in out

    def test_periodic_query(self, world_dir, capsys):
        path = self.path_from_world(world_dir)
        assert main(["query", "--world", str(world_dir), "--path", path,
                     "--tod", "08:00", "--window-min", "30",
                     "--beta", "5"]) == 0
        out = capsys.readouterr().out
        assert "estimated mean" in out

    def test_unknown_edge_rejected(self, world_dir):
        with pytest.raises(SystemExit):
            main(["query", "--world", str(world_dir), "--path", "99999"])

    def test_bad_path_format(self, world_dir):
        with pytest.raises(SystemExit):
            main(["query", "--world", str(world_dir), "--path", "a,b"])

    def test_non_contiguous_path_rejected(self, world_dir):
        from repro.network import load_network

        network = load_network(world_dir / "network.json")
        edges = list(network.edge_ids())
        # Find two edges that do not connect.
        first = network.edge(edges[0])
        second = next(
            e for e in edges
            if network.edge(e).source != first.target and e != edges[0]
        )
        with pytest.raises(SystemExit):
            main(["query", "--world", str(world_dir),
                  "--path", f"{edges[0]},{second}"])

    def test_bad_tod(self, world_dir):
        path = self.path_from_world(world_dir)
        with pytest.raises(SystemExit):
            main(["query", "--world", str(world_dir), "--path", path,
                  "--tod", "25:99x"])

    def test_user_filter_query(self, world_dir, capsys):
        from repro.network import load_trajectories

        trajectories = load_trajectories(world_dir / "trajectories.txt")
        trajectory = max(trajectories, key=len)
        path = ",".join(str(e) for e in trajectory.path[:2])
        assert main(["query", "--world", str(world_dir), "--path", path,
                     "--user", str(trajectory.user_id),
                     "--tod", "08:00", "--beta", "2"]) == 0


class TestIndexCommand:
    def test_build_save_and_query_from_saved(
        self, world_dir, tmp_path, capsys
    ):
        index_dir = tmp_path / "index"
        assert main(["index", "--world", str(world_dir),
                     "--out", str(index_dir)]) == 0
        out = capsys.readouterr().out
        assert "built index" in out
        assert (index_dir / "meta.json").exists()
        assert (index_dir / "payload").is_dir()
        assert (index_dir / "payload" / "users.npy").exists()

        path = TestQuery().path_from_world(world_dir)
        assert main(["query", "--world", str(world_dir),
                     "--index", str(index_dir), "--path", path]) == 0
        assert "estimated mean" in capsys.readouterr().out

    def test_wrong_world_index_rejected_by_digest(
        self, world_dir, tmp_path, capsys
    ):
        other = tmp_path / "other_world"
        main(["generate", "--scale", "tiny", "--seed", "9",
              "--out", str(other)])
        index_dir = tmp_path / "index"
        main(["index", "--world", str(other), "--out", str(index_dir)])
        capsys.readouterr()
        path = TestQuery().path_from_world(world_dir)
        with pytest.raises(SystemExit, match="different world"):
            main(["query", "--world", str(world_dir),
                  "--index", str(index_dir), "--path", path])

    def test_swapped_network_rejected_on_digest_path(
        self, world_dir, tmp_path, capsys
    ):
        """The world digest covers trajectories only; a swapped
        network.json must still be caught."""
        import shutil

        clone = tmp_path / "clone"
        clone.mkdir()
        shutil.copy(world_dir / "network.json", clone / "network.json")
        shutil.copy(
            world_dir / "trajectories.txt", clone / "trajectories.txt"
        )
        index_dir = tmp_path / "index"
        main(["index", "--world", str(clone), "--out", str(index_dir)])
        capsys.readouterr()
        # Swap in a bigger network: same trajectories, different alphabet.
        main(["generate", "--scale", "small", "--seed", "5",
              "--out", str(tmp_path / "big")])
        shutil.copy(tmp_path / "big" / "network.json", clone / "network.json")
        # Edge 1 exists in both networks, so path validation passes and
        # the engine's alphabet guard fires; main converts the
        # ReproError to a one-line error and exit code 1.
        assert main(["query", "--world", str(clone),
                     "--index", str(index_dir), "--path", "1"]) == 1
        err = capsys.readouterr().err
        assert "alphabet size" in err

    def test_library_saved_index_uses_parsed_fallback(
        self, world_dir, tmp_path, capsys
    ):
        """A save() without the CLI's world digest still loads, via the
        parsed trajectory fingerprint."""
        from repro import SNTIndex
        from repro.network import load_network, load_trajectories

        network = load_network(world_dir / "network.json")
        trajectories = load_trajectories(world_dir / "trajectories.txt")
        index = SNTIndex.build(trajectories, network.alphabet_size)
        index.save(tmp_path / "libindex")  # no extra digest
        path = TestQuery().path_from_world(world_dir)
        assert main(["query", "--world", str(world_dir),
                     "--index", str(tmp_path / "libindex"),
                     "--path", path]) == 0
        assert "estimated mean" in capsys.readouterr().out

    def test_saved_and_built_answers_agree(self, world_dir, tmp_path, capsys):
        index_dir = tmp_path / "index"
        main(["index", "--world", str(world_dir), "--out", str(index_dir)])
        capsys.readouterr()
        path = TestQuery().path_from_world(world_dir)
        main(["query", "--world", str(world_dir), "--path", path])
        built = capsys.readouterr().out
        main(["query", "--world", str(world_dir), "--index", str(index_dir),
              "--path", path])
        loaded = capsys.readouterr().out
        # Identical output bar the (timing) first line.
        assert built.splitlines()[1:] == loaded.splitlines()[1:]


class TestBatchCommand:
    def paths_arg(self, world_dir, n=3, length=4):
        from repro.network import load_trajectories

        trajectories = load_trajectories(world_dir / "trajectories.txt")
        longest = sorted(trajectories, key=len, reverse=True)[:n]
        return ";".join(
            ",".join(str(e) for e in tr.path[:length]) for tr in longest
        )

    def test_inline_paths(self, world_dir, capsys):
        paths = self.paths_arg(world_dir)
        assert main(["batch", "--world", str(world_dir), "--paths", paths,
                     "--tod", "08:00", "--workers", "2",
                     "--repeat", "2"]) == 0
        out = capsys.readouterr().out
        assert "answered 6 queries" in out
        assert "cache:" in out

    def test_paths_file_with_comments_and_tod(
        self, world_dir, tmp_path, capsys
    ):
        paths = self.paths_arg(world_dir, n=2).split(";")
        query_file = tmp_path / "queries.txt"
        query_file.write_text(
            "# repeated commute\n"
            f"{paths[0]} 08:30\n"
            "\n"
            f"{paths[1]}\n"
        )
        assert main(["batch", "--world", str(world_dir),
                     "--paths-file", str(query_file)]) == 0
        out = capsys.readouterr().out
        assert "answered 2 queries" in out

    def test_stream_flag_matches_batched_output(self, world_dir, capsys):
        paths = self.paths_arg(world_dir)
        args = ["batch", "--world", str(world_dir), "--paths", paths,
                "--tod", "08:00", "--workers", "2", "--repeat", "2"]
        assert main(args) == 0
        batched = capsys.readouterr().out
        assert main(args + ["--stream"]) == 0
        streamed = capsys.readouterr().out
        # Identical per-query lines in identical (submission) order.
        # The wall-clock line and the aggregate cache-stats line are
        # dropped: under --workers 2 two threads may race a same-key
        # cold miss and each scan once (documented in core/engine.py),
        # so the hit/miss totals are not deterministic.
        def answer_lines(text):
            return [
                line for line in text.splitlines()
                if " ms " not in line and not line.startswith("cache:")
            ]

        assert answer_lines(streamed) == answer_lines(batched)

    def test_no_cache_flag(self, world_dir, capsys):
        paths = self.paths_arg(world_dir, n=1)
        assert main(["batch", "--world", str(world_dir), "--paths", paths,
                     "--no-cache"]) == 0
        assert "cache:" not in capsys.readouterr().out

    def test_cache_dir_warms_across_runs(self, world_dir, tmp_path, capsys):
        """Two separate batch runs share the on-disk tier: the second
        answers without touching the index, identically."""
        paths = self.paths_arg(world_dir)
        args = ["batch", "--world", str(world_dir), "--paths", paths,
                "--tod", "08:00", "--cache-dir", str(tmp_path / "tier")]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "shared tier:" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "0 scans" in second and "shared hits" in second

        def answer_lines(text):
            return [line for line in text.splitlines() if " mean " in line]

        first_answers = answer_lines(first)
        assert first_answers  # the filter actually matched something
        assert [line.split("(")[0] for line in answer_lines(second)] == [
            line.split("(")[0] for line in first_answers
        ]

    def test_cache_dir_conflicts_with_no_cache(self, world_dir, tmp_path):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["batch", "--world", str(world_dir), "--paths", "1,2",
                  "--no-cache", "--cache-dir", str(tmp_path / "tier")])

    def test_empty_batch_rejected(self, world_dir):
        with pytest.raises(SystemExit):
            main(["batch", "--world", str(world_dir), "--paths", ";;"])

    def test_bad_query_line_rejected(self, world_dir, tmp_path):
        query_file = tmp_path / "queries.txt"
        query_file.write_text("1,2 08:00 extra\n")
        with pytest.raises(SystemExit):
            main(["batch", "--world", str(world_dir),
                  "--paths-file", str(query_file)])

    def test_invalid_workers_rejected(self, world_dir):
        with pytest.raises(SystemExit):
            main(["batch", "--world", str(world_dir), "--paths", "1",
                  "--workers", "0"])


class TestShardedIndexCommand:
    def test_build_sharded_and_query_transparently(
        self, world_dir, tmp_path, capsys
    ):
        index_dir = tmp_path / "sharded-index"
        assert main(["index", "--world", str(world_dir),
                     "--out", str(index_dir),
                     "--partition-days", "7", "--shards", "3"]) == 0
        out = capsys.readouterr().out
        assert "shard(s)" in out
        assert (index_dir / "manifest.json").exists()
        assert (index_dir / "shard_0000" / "meta.json").exists()

        path = TestQuery().path_from_world(world_dir)
        # query and batch detect the sharded layout without extra flags.
        assert main(["query", "--world", str(world_dir),
                     "--index", str(index_dir), "--path", path]) == 0
        assert "estimated mean" in capsys.readouterr().out
        assert main(["batch", "--world", str(world_dir),
                     "--index", str(index_dir), "--paths", path]) == 0
        out = capsys.readouterr().out
        assert "answered" in out
        assert "shards:" in out  # router statistics line

    def test_sharded_and_monolithic_answers_agree(
        self, world_dir, tmp_path, capsys
    ):
        mono_dir = tmp_path / "mono"
        shard_dir = tmp_path / "sharded"
        assert main(["index", "--world", str(world_dir),
                     "--out", str(mono_dir),
                     "--partition-days", "7"]) == 0
        assert main(["index", "--world", str(world_dir),
                     "--out", str(shard_dir),
                     "--partition-days", "7", "--shards", "3",
                     "--build-workers", "2"]) == 0
        capsys.readouterr()
        path = TestQuery().path_from_world(world_dir, length=4)
        assert main(["query", "--world", str(world_dir),
                     "--index", str(mono_dir), "--path", path,
                     "--tod", "08:00", "--beta", "5"]) == 0
        mono_out = capsys.readouterr().out
        assert main(["query", "--world", str(world_dir),
                     "--index", str(shard_dir), "--path", path,
                     "--tod", "08:00", "--beta", "5"]) == 0
        shard_out = capsys.readouterr().out

        def histogram_lines(text):
            # Drop the wall-clock line; every answer line must agree.
            return [line for line in text.splitlines() if " ms" not in line]

        assert histogram_lines(mono_out) == histogram_lines(shard_out)

    def test_shards_without_partition_days_fails_one_line(
        self, world_dir, tmp_path, capsys
    ):
        code = main(["index", "--world", str(world_dir),
                     "--out", str(tmp_path / "bad"),
                     "--shards", "2"])
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1
        assert "partition_days" in err

    def test_wrong_world_sharded_index_rejected(
        self, world_dir, tmp_path, capsys
    ):
        other = tmp_path / "other_world"
        main(["generate", "--scale", "tiny", "--seed", "9",
              "--out", str(other)])
        index_dir = tmp_path / "sharded"
        main(["index", "--world", str(other), "--out", str(index_dir),
              "--partition-days", "7", "--shards", "2"])
        capsys.readouterr()
        path = TestQuery().path_from_world(world_dir)
        with pytest.raises(SystemExit, match="different world"):
            main(["query", "--world", str(world_dir),
                  "--index", str(index_dir), "--path", path])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_no_args_prints_usage_and_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("usage:")
        assert "a command is required" in err

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"

    def test_unknown_partitioner_rejected(self, world_dir):
        with pytest.raises(SystemExit):
            main(["query", "--world", str(world_dir), "--path", "1",
                  "--partitioner", "pi_fancy"])


class TestServe:
    def test_bind_failure_exits_1_with_one_line(self, world_dir, capsys):
        """A port already in use is a ReproError exit, not a traceback."""
        import socket

        blocker = socket.socket()
        try:
            blocker.bind(("127.0.0.1", 0))
            busy_port = blocker.getsockname()[1]
            code = main(
                ["serve", "--world", str(world_dir),
                 "--port", str(busy_port)]
            )
        finally:
            blocker.close()
        assert code == 1
        err = capsys.readouterr().err
        lines = err.strip().splitlines()
        assert len(lines) == 1
        assert lines[0].startswith("error: cannot bind 127.0.0.1:")

    def test_cache_ttl_requires_cache_dir(self, world_dir):
        with pytest.raises(SystemExit):
            main(["serve", "--world", str(world_dir),
                  "--cache-ttl-s", "60"])

    def test_serve_wires_flags_into_configs(self, world_dir, monkeypatch):
        """The serve command translates CLI flags into ServerConfig and
        the session's EngineConfig (without actually binding)."""
        from repro import cli

        captured = {}

        def fake_run_server(db, config, on_started=None):
            captured["db"] = db
            captured["config"] = config

        monkeypatch.setattr(cli, "run_server", fake_run_server, raising=False)
        import repro.server

        monkeypatch.setattr(repro.server, "run_server", fake_run_server)
        code = main(
            ["serve", "--world", str(world_dir), "--port", "0",
             "--window-ms", "12", "--max-batch", "8",
             "--max-inflight", "32", "--serve-workers", "3"]
        )
        assert code == 0
        config = captured["config"]
        assert config.window_s == pytest.approx(0.012)
        assert config.max_batch == 8
        assert config.max_inflight == 32
        assert config.executor_workers == 3
        assert captured["db"].config.dedup_subqueries is True


def _all_repro_error_types():
    """Every concrete ReproError subclass the library defines."""
    import inspect

    from repro import errors as errors_module
    from repro.errors import ReproError

    return sorted(
        (
            obj
            for obj in vars(errors_module).values()
            if inspect.isclass(obj) and issubclass(obj, ReproError)
        ),
        key=lambda cls: cls.__name__,
    )


def _instantiate(error_type):
    for args in (("boom boom",), (1,)):
        try:
            return error_type(*args)
        except TypeError:
            continue
    raise AssertionError(f"cannot instantiate {error_type}")


class TestErrorExitCodes:
    """Table-driven CLI error contract: every ReproError subclass maps
    to exactly one ``error: ...`` stderr line and exit code 1."""

    @pytest.mark.parametrize(
        "error_type", _all_repro_error_types(),
        ids=lambda cls: cls.__name__,
    )
    def test_every_repro_error_exits_1_with_one_line(
        self, monkeypatch, capsys, error_type
    ):
        from repro import cli

        error = _instantiate(error_type)

        def explode(args):
            raise error

        monkeypatch.setattr(cli, "_cmd_info", explode)
        assert cli.main(["info", "--world", "ignored"]) == 1
        err = capsys.readouterr().err
        lines = err.strip().splitlines()
        assert len(lines) == 1, f"expected one line, got {lines!r}"
        assert lines[0].startswith("error: ")

    def test_multiline_error_collapsed_to_one_line(
        self, monkeypatch, capsys
    ):
        from repro import cli
        from repro.errors import RequestValidationError

        monkeypatch.setattr(
            cli,
            "_cmd_info",
            lambda args: (_ for _ in ()).throw(
                RequestValidationError("bad\nrequest\npayload")
            ),
        )
        assert cli.main(["info", "--world", "ignored"]) == 1
        err = capsys.readouterr().err
        assert err.strip() == "error: bad request payload"

    def test_request_validation_error_from_real_command(
        self, world_dir, capsys
    ):
        # End to end: an unknown estimator mode can also arrive through
        # the library (not argparse choices); it must exit 1, not crash.
        from repro import cli

        path = TestQuery().path_from_world(world_dir)
        code = cli.main(
            ["query", "--world", str(world_dir), "--path", path,
             "--beta", "0"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "beta" in err


class TestShardLifecycleCommands:
    """ISSUE 9: ``--store`` URIs, ``compact``, and ``migrate``."""

    def _histogram_lines(self, text):
        return [line for line in text.splitlines() if " ms" not in line]

    def _build_sharded(self, world_dir, index_dir, shards=4):
        assert main(["index", "--world", str(world_dir),
                     "--out", str(index_dir),
                     "--partition-days", "7",
                     "--shards", str(shards)]) == 0

    def test_store_uri_equals_index_dir(self, world_dir, tmp_path, capsys):
        index_dir = tmp_path / "sharded"
        self._build_sharded(world_dir, index_dir)
        capsys.readouterr()
        path = TestQuery().path_from_world(world_dir)
        assert main(["query", "--world", str(world_dir),
                     "--index", str(index_dir), "--path", path,
                     "--tod", "08:00"]) == 0
        via_dir = capsys.readouterr().out
        assert main(["query", "--world", str(world_dir),
                     "--store", f"file:{index_dir}", "--path", path,
                     "--tod", "08:00"]) == 0
        via_store = capsys.readouterr().out
        assert self._histogram_lines(via_dir) == self._histogram_lines(
            via_store
        )

    def test_store_and_index_mutually_exclusive(self, world_dir, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["query", "--world", str(world_dir),
                  "--index", str(tmp_path), "--store", f"file:{tmp_path}",
                  "--path", "1"])
        assert excinfo.value.code == 2

    def test_index_out_accepts_object_uri(self, world_dir, tmp_path,
                                          capsys):
        uri = (
            f"object://{tmp_path}/remote?cache={tmp_path}/cache"
        )
        assert main(["index", "--world", str(world_dir), "--out", uri,
                     "--partition-days", "7", "--shards", "2"]) == 0
        capsys.readouterr()
        assert (tmp_path / "remote" / "manifest.json").exists()
        path = TestQuery().path_from_world(world_dir)
        assert main(["query", "--world", str(world_dir),
                     "--store", uri, "--path", path]) == 0
        assert "estimated mean" in capsys.readouterr().out

    def test_compact_reduces_shards_same_answers(
        self, world_dir, tmp_path, capsys
    ):
        index_dir = tmp_path / "sharded"
        self._build_sharded(world_dir, index_dir)
        path = TestQuery().path_from_world(world_dir)
        capsys.readouterr()
        assert main(["query", "--world", str(world_dir),
                     "--index", str(index_dir), "--path", path,
                     "--tod", "08:00"]) == 0
        before = capsys.readouterr().out

        assert main(["compact", str(index_dir)]) == 0
        out = capsys.readouterr().out
        assert "compacted" in out
        assert "4 -> 1" in out
        import json

        manifest = json.loads((index_dir / "manifest.json").read_text())
        assert len(manifest["shards"]) == 1
        assert manifest["epoch"] == 1

        assert main(["query", "--world", str(world_dir),
                     "--index", str(index_dir), "--path", path,
                     "--tod", "08:00"]) == 0
        after = capsys.readouterr().out
        assert self._histogram_lines(before) == self._histogram_lines(after)

    def test_compact_policy_flags_and_noop(self, world_dir, tmp_path,
                                           capsys):
        index_dir = tmp_path / "sharded"
        self._build_sharded(world_dir, index_dir)
        capsys.readouterr()
        assert main(["compact", str(index_dir), "--max-group", "2"]) == 0
        assert "4 -> 2" in capsys.readouterr().out
        # A threshold below every shard's size leaves nothing to merge.
        assert main(["compact", str(index_dir),
                     "--small-traversals", "0"]) == 0
        assert "nothing to compact" in capsys.readouterr().out

    def test_compact_monolithic_fails_one_line(self, world_dir, tmp_path,
                                               capsys):
        mono_dir = tmp_path / "mono"
        assert main(["index", "--world", str(world_dir),
                     "--out", str(mono_dir),
                     "--partition-days", "7"]) == 0
        capsys.readouterr()
        assert main(["compact", str(mono_dir)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "monolithic" in err

    def test_migrate_current_is_noop(self, world_dir, tmp_path, capsys):
        index_dir = tmp_path / "sharded"
        self._build_sharded(world_dir, index_dir, shards=2)
        capsys.readouterr()
        assert main(["migrate", str(index_dir)]) == 0
        assert "nothing to do" in capsys.readouterr().out

    def test_migrate_not_an_index_fails_one_line(self, tmp_path, capsys):
        assert main(["migrate", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1
