"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def world_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("world")
    code = main(["generate", "--scale", "tiny", "--seed", "0",
                 "--out", str(path)])
    assert code == 0
    return path


class TestGenerate:
    def test_files_written(self, world_dir):
        assert (world_dir / "network.json").exists()
        assert (world_dir / "trajectories.txt").exists()

    def test_output_mentions_counts(self, world_dir, capsys):
        main(["generate", "--scale", "tiny", "--seed", "1",
              "--out", str(world_dir.parent / "second")])
        out = capsys.readouterr().out
        assert "edges" in out and "trajectories" in out


class TestInfo:
    def test_info_reports_stats(self, world_dir, capsys):
        assert main(["info", "--world", str(world_dir)]) == 0
        out = capsys.readouterr().out
        assert "network:" in out
        assert "trajectories:" in out
        assert "days" in out


class TestQuery:
    def path_from_world(self, world_dir, length=3):
        from repro.network import load_trajectories

        trajectories = load_trajectories(world_dir / "trajectories.txt")
        trajectory = max(trajectories, key=len)
        return ",".join(str(e) for e in trajectory.path[:length])

    def test_fixed_interval_query(self, world_dir, capsys):
        path = self.path_from_world(world_dir)
        assert main(["query", "--world", str(world_dir),
                     "--path", path]) == 0
        out = capsys.readouterr().out
        assert "estimated mean" in out
        assert "sub-queries" in out

    def test_periodic_query(self, world_dir, capsys):
        path = self.path_from_world(world_dir)
        assert main(["query", "--world", str(world_dir), "--path", path,
                     "--tod", "08:00", "--window-min", "30",
                     "--beta", "5"]) == 0
        out = capsys.readouterr().out
        assert "estimated mean" in out

    def test_unknown_edge_rejected(self, world_dir):
        with pytest.raises(SystemExit):
            main(["query", "--world", str(world_dir), "--path", "99999"])

    def test_bad_path_format(self, world_dir):
        with pytest.raises(SystemExit):
            main(["query", "--world", str(world_dir), "--path", "a,b"])

    def test_non_contiguous_path_rejected(self, world_dir):
        from repro.network import load_network

        network = load_network(world_dir / "network.json")
        edges = list(network.edge_ids())
        # Find two edges that do not connect.
        first = network.edge(edges[0])
        second = next(
            e for e in edges
            if network.edge(e).source != first.target and e != edges[0]
        )
        with pytest.raises(SystemExit):
            main(["query", "--world", str(world_dir),
                  "--path", f"{edges[0]},{second}"])

    def test_bad_tod(self, world_dir):
        path = self.path_from_world(world_dir)
        with pytest.raises(SystemExit):
            main(["query", "--world", str(world_dir), "--path", path,
                  "--tod", "25:99x"])

    def test_user_filter_query(self, world_dir, capsys):
        from repro.network import load_trajectories

        trajectories = load_trajectories(world_dir / "trajectories.txt")
        trajectory = max(trajectories, key=len)
        path = ",".join(str(e) for e in trajectory.path[:2])
        assert main(["query", "--world", str(world_dir), "--path", path,
                     "--user", str(trajectory.user_id),
                     "--tod", "08:00", "--beta", "2"]) == 0


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_partitioner_rejected(self, world_dir):
        with pytest.raises(SystemExit):
            main(["query", "--world", str(world_dir), "--path", "1",
                  "--partitioner", "pi_fancy"])
