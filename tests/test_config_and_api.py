"""Tests for the configuration module and the public API surface."""

import importlib

import pytest

import repro
from repro.config import (
    DEFAULT_INTERVAL_LADDER_S,
    SECONDS_PER_DAY,
    available_scales,
    get_scale,
)


class TestConfig:
    def test_known_scales(self):
        assert set(available_scales()) == {"tiny", "small", "medium", "large"}

    def test_get_scale_by_name(self):
        assert get_scale("tiny").name == "tiny"
        assert get_scale("large").n_drivers == 458  # the ITSP fleet size

    def test_get_scale_unknown(self):
        with pytest.raises(KeyError):
            get_scale("galactic")

    def test_env_var_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert get_scale(None).name == "medium"

    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale(None).name == "small"

    def test_interval_ladder_matches_paper(self):
        # A = <15, 30, 45, 60, 90, 120> minutes (Section 5.2).
        assert DEFAULT_INTERVAL_LADDER_S == (
            900, 1800, 2700, 3600, 5400, 7200,
        )

    def test_scales_are_ordered_by_size(self):
        tiny, small = get_scale("tiny"), get_scale("small")
        medium, large = get_scale("medium"), get_scale("large")
        assert tiny.n_drivers < small.n_drivers < medium.n_drivers
        assert medium.n_drivers < large.n_drivers
        assert tiny.n_days < small.n_days <= medium.n_days <= large.n_days

    def test_seconds_per_day(self):
        assert SECONDS_PER_DAY == 86_400


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_subpackages_importable(self):
        for module in (
            "repro.fmindex",
            "repro.temporal",
            "repro.histogram",
            "repro.network",
            "repro.trajectories",
            "repro.sntindex",
            "repro.core",
            "repro.baselines",
            "repro.metrics",
            "repro.experiments",
        ):
            importlib.import_module(module)

    def test_subpackage_alls_resolve(self):
        for module_name in (
            "repro.fmindex",
            "repro.temporal",
            "repro.histogram",
            "repro.network",
            "repro.trajectories",
            "repro.sntindex",
            "repro.core",
            "repro.baselines",
            "repro.metrics",
            "repro.experiments",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", ()):
                assert hasattr(module, name), f"{module_name}.{name}"

    def test_quickstart_docstring_example(self):
        """The module docstring's example must actually work."""
        from repro import (
            PeriodicInterval,
            SNTIndex,
            TripRequest,
            generate_dataset,
            open_db,
        )

        dataset = generate_dataset("tiny", seed=0)
        index = SNTIndex.build(
            dataset.trajectories, dataset.network.alphabet_size
        )
        db = open_db(index, network=dataset.network)
        trip = dataset.trajectories[100]
        result = db.query(
            TripRequest(
                path=trip.path,
                interval=PeriodicInterval.around(trip.start_time, 900),
                beta=20,
            )
        )
        assert result.histogram.total > 0


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if (
                isinstance(obj, type)
                and issubclass(obj, Exception)
                # Warning categories (ReproDeprecationWarning) live in
                # the warnings hierarchy, not the error hierarchy.
                and not issubclass(obj, Warning)
                and obj is not errors.ReproError
                and obj.__module__ == "repro.errors"
            ):
                assert issubclass(obj, errors.ReproError), name

    def test_unknown_edge_error_payload(self):
        from repro.errors import UnknownEdgeError

        error = UnknownEdgeError(42)
        assert error.edge_id == 42
        assert "42" in str(error)
