"""Tests for the experiment harness (workload, figure runners)."""

import pytest

from repro.experiments import (
    QUERY_TYPES,
    accuracy_sweep,
    baseline_numbers,
    build_workload,
    estimator_report,
    format_series,
    format_table,
    mib,
    partitioning_report,
    run_accuracy_config,
)
from repro.experiments.workload import derive_query_set
from repro.config import get_scale


@pytest.fixture(scope="module")
def workload():
    return build_workload("tiny", seed=0)


class TestWorkload:
    def test_queries_from_second_half(self, workload):
        start, end = workload.dataset.trajectories.time_span()
        median = (start + end) // 2
        for spec in workload.queries:
            assert spec.start_time > median

    def test_queries_have_min_length(self, workload):
        for spec in workload.queries:
            assert len(spec.path) >= 8

    def test_ground_truth_consistent(self, workload):
        for spec in workload.queries:
            trajectory = workload.dataset.trajectories.by_id(spec.traj_id)
            assert spec.true_duration == trajectory.duration()
            assert spec.true_subpath_duration(0, len(spec.path)) == (
                pytest.approx(spec.true_duration)
            )
            assert spec.true_subpath_duration(0, 1) == trajectory.points[0].tt

    def test_query_types_materialise(self, workload):
        spec = workload.queries[0]
        for query_type in QUERY_TYPES:
            query = spec.to_query(query_type, 900, workload.t_max, beta=10)
            assert query.path == spec.path
        with pytest.raises(ValueError):
            spec.to_query("nearest_neighbor", 900, workload.t_max, 10)

    def test_user_query_carries_user(self, workload):
        spec = workload.queries[0]
        assert spec.to_query("user", 900, workload.t_max, 10).user == spec.user_id
        assert spec.to_query("temporal", 900, workload.t_max, 10).user is None

    def test_derive_rejects_impossible_min_length(self, workload):
        with pytest.raises(ValueError):
            derive_query_set(
                workload.dataset,
                seed=0,
                scale=get_scale("tiny"),
                min_path_length=10_000,
            )

    def test_deterministic(self, workload):
        again = build_workload("tiny", seed=0)
        assert [q.traj_id for q in again.queries] == [
            q.traj_id for q in workload.queries
        ]


class TestAccuracyRunner:
    def test_single_config(self, workload):
        result = run_accuracy_config(
            workload, "temporal", "pi_Z", "regular", beta=10, max_queries=10
        )
        assert 0 <= result.smape <= 200
        assert 0 <= result.weighted_error <= 200
        assert result.mean_subpath_length >= 1.0
        assert result.ms_per_query > 0
        assert result.n_queries == 10

    def test_sweep_covers_grid(self, workload):
        results = accuracy_sweep(
            workload,
            "spq",
            betas=(10,),
            partitioners=("pi_Z", "pi_N"),
            splitters=("regular",),
            max_queries=5,
        )
        assert len(results) == 2
        keys = {r.key() for r in results}
        assert ("spq", "pi_Z", "regular", 10) in keys

    def test_estimator_mode_config(self, workload):
        result = run_accuracy_config(
            workload,
            "temporal",
            "pi_Z",
            "regular",
            beta=10,
            estimator_mode="CSS-Acc",
            max_queries=5,
        )
        assert result.smape > 0


class TestBaselines:
    def test_ordering_matches_paper(self, workload):
        """Speed limits must be far worse than data-driven estimates."""
        numbers = baseline_numbers(workload)
        assert (
            numbers["speed_limit_smape"] > numbers["segment_level_smape"]
        )

    def test_path_based_beats_segment_level(self, workload):
        numbers = baseline_numbers(workload)
        result = run_accuracy_config(
            workload, "temporal", "pi_Z", "regular", beta=10
        )
        assert result.smape < numbers["segment_level_smape"]


class TestPartitioningReport:
    def test_report_shapes(self, workload):
        rows = partitioning_report(
            workload,
            partition_days_list=(7, None),
            tod_bucket_minutes=(10,),
            include_btree=False,
        )
        assert len(rows) == 2
        weekly, full = rows
        assert weekly["n_partitions"] > full["n_partitions"]
        # C grows linearly with the number of partitions.
        assert (
            weekly["component_bytes"]["C"]
            > full["component_bytes"]["C"]
        )
        # The wavelet-tree total grows with partition count.
        assert (
            weekly["component_bytes"]["WT"]
            >= full["component_bytes"]["WT"]
        )
        # ToD histogram store grows with partitions.
        assert weekly["tod_store_bytes"][10] > full["tod_store_bytes"][10]

    def test_btree_forest_larger(self, workload):
        rows = partitioning_report(
            workload,
            partition_days_list=(None,),
            tod_bucket_minutes=(10,),
            include_btree=True,
        )
        css = next(r for r in rows if r["kind"] == "css")
        btree = next(r for r in rows if r["kind"] == "btree")
        assert (
            btree["component_bytes"]["Forest"]
            > css["component_bytes"]["Forest"]
        )


class TestEstimatorReport:
    def test_mode_ordering(self, workload):
        report = estimator_report(workload, max_queries=10)
        isa = report["ISA"]["mean_q_error_log10"]
        fast = report["CSS-Fast"]["mean_q_error_log10"]
        acc = report["CSS-Acc"]["mean_q_error_log10"]
        # Paper Figure 11a: ISA worst, Acc best.
        assert isa > fast > acc

    def test_css_at_least_as_good_as_bt(self, workload):
        report = estimator_report(workload, max_queries=10)
        assert (
            report["CSS-Fast"]["mean_q_error_log10"]
            <= report["BT-Fast"]["mean_q_error_log10"] + 1e-9
        )
        assert (
            report["CSS-Acc"]["mean_q_error_log10"]
            <= report["BT-Acc"]["mean_q_error_log10"] + 1e-9
        )


class TestReporting:
    def test_format_table(self):
        text = format_table(
            ["a", "b"], [[1, 2.5], ["x", "y"]], title="T"
        )
        assert "T" in text and "2.50" in text and "x" in text

    def test_format_series(self):
        text = format_series(
            "Fig", "beta", [10, 20], {"pi_Z": [1.0, 2.0]},
        )
        assert "pi_Z" in text and "beta" in text

    def test_mib(self):
        assert mib(1024 * 1024) == 1.0
