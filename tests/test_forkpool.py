"""fork_map input validation (the fan-out primitive behind builds and
process batches)."""

import pytest

from repro.errors import ConfigurationError, ReproError
from repro.forkpool import fork_map


def _double(x):
    return x * 2


def test_fork_map_maps_in_order():
    assert fork_map(_double, [1, 2, 3], workers=2) == [2, 4, 6]


def test_fork_map_empty_payloads():
    assert fork_map(_double, [], workers=2) == []


@pytest.mark.parametrize("workers", (0, -1, True, 1.5, "4"))
def test_fork_map_rejects_bad_worker_counts(workers):
    """A clear typed error up front, not ProcessPoolExecutor's opaque
    ValueError mid-flight.  ConfigurationError is both a ReproError and
    a ValueError (the legacy contract)."""
    with pytest.raises(ConfigurationError, match="workers"):
        fork_map(_double, [1, 2], workers=workers)
    with pytest.raises(ValueError):
        fork_map(_double, [1, 2], workers=workers)
    with pytest.raises(ReproError):
        fork_map(_double, [1, 2], workers=workers)
