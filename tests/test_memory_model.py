"""Tests for the C++-layout memory model and paper-scale projection."""

import pytest

from repro.experiments import (
    PAPER_SHAPE,
    CorpusShape,
    cpp_layout_model,
    mib,
    project_to_paper_scale,
)


class TestLayoutModel:
    def setup_method(self):
        self.shape = CorpusShape(
            n_edges=1000,
            n_traversals=500_000,
            n_trajectories=40_000,
            entropy_bits=8.0,
        )

    def test_components_present(self):
        model = cpp_layout_model(self.shape)
        assert set(model) == {"WT", "C", "user", "Forest"}
        assert all(v > 0 for v in model.values())

    def test_counters_linear_in_partitions(self):
        one = cpp_layout_model(self.shape, n_partitions=1)["C"]
        ten = cpp_layout_model(self.shape, n_partitions=10)["C"]
        assert ten == pytest.approx(10 * one)

    def test_wavelet_grows_with_partitions(self):
        one = cpp_layout_model(self.shape, n_partitions=1)["WT"]
        many = cpp_layout_model(self.shape, n_partitions=50)["WT"]
        assert many > one

    def test_user_and_forest_stable_across_partitions(self):
        one = cpp_layout_model(self.shape, n_partitions=1)
        many = cpp_layout_model(self.shape, n_partitions=50)
        assert many["user"] == one["user"]
        # Forest only gains the 2-byte partition id per leaf.
        expected = one["Forest"] + 2 * self.shape.n_traversals
        assert many["Forest"] == pytest.approx(expected)

    def test_btree_forest_larger_than_css(self):
        css = cpp_layout_model(self.shape, tree_kind="css")["Forest"]
        btree = cpp_layout_model(self.shape, tree_kind="btree")["Forest"]
        assert btree > css

    def test_validation(self):
        with pytest.raises(ValueError):
            cpp_layout_model(self.shape, n_partitions=0)
        with pytest.raises(ValueError):
            cpp_layout_model(self.shape, tree_kind="lsm")


class TestPaperProjection:
    """The projection must land in Figure 10a's reported ballpark."""

    def test_full_counters_close_to_paper(self):
        # Paper: "less than 6 MB" per partition counter at 1.46M edges.
        projected = project_to_paper_scale(n_partitions=1)
        assert 5 <= mib(projected["C"]) <= 30

    def test_weekly_counters_hundreds_of_mib(self):
        # Paper: counters grow to "nearly 600 MB" at 138 partitions.
        projected = project_to_paper_scale(n_partitions=138)
        assert 400 <= mib(projected["C"]) <= 3000

    def test_wavelet_tree_magnitudes(self):
        # Paper: ~280 MB at FULL growing to over 4 GB at weekly grain.
        full = project_to_paper_scale(n_partitions=1)
        weekly = project_to_paper_scale(n_partitions=138)
        assert 100 <= mib(full["WT"]) <= 600
        assert mib(weekly["WT"]) >= 2000

    def test_paper_shape_constants(self):
        assert PAPER_SHAPE.n_edges == 1_460_000
        assert PAPER_SHAPE.n_traversals == 79_000_000

    def test_custom_shape_passthrough(self):
        tiny = CorpusShape(10, 100, 5, 3.0)
        projected = project_to_paper_scale(shape=tiny)
        assert projected["user"] == 8 * 5
