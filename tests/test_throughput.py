"""Tests for the throughput experiments."""

import pytest

from repro.experiments import (
    build_workload,
    measure_batch_service,
    measure_throughput,
)


@pytest.fixture(scope="module")
def workload():
    return build_workload("tiny", seed=0)


def test_single_worker(workload):
    (result,) = measure_throughput(
        workload, worker_counts=(1,), n_queries=8
    )
    assert result.n_workers == 1
    assert result.n_queries == 8
    assert result.queries_per_second > 0


def test_all_queries_processed_across_workers(workload):
    results = measure_throughput(
        workload, worker_counts=(1, 3), n_queries=10
    )
    assert [r.n_queries for r in results] == [10, 10]


def test_concurrent_readers_do_not_corrupt_results(workload):
    """Same answers single- and multi-threaded (index is immutable)."""
    from repro import EngineConfig, QueryEngine, TripRequest

    engine = QueryEngine(
        workload.index, workload.network, EngineConfig(partitioner="pi_Z")
    )
    spec = workload.queries[0]
    request = TripRequest.from_spq(
        spec.to_query("temporal", 900, workload.t_max, 10),
        exclude_ids=(spec.traj_id,),
    )
    before = engine.query(request)
    measure_throughput(workload, worker_counts=(4,), n_queries=10)
    after = engine.query(request)
    assert before.histogram == after.histogram


def test_invalid_worker_count(workload):
    with pytest.raises(ValueError):
        measure_throughput(workload, worker_counts=(1, -2))


def test_batch_service_modes_and_equivalence(workload):
    results, identical = measure_batch_service(
        workload, n_queries=4, repeat=2, n_workers=2
    )
    assert identical
    by_mode = {r.mode: r for r in results}
    assert set(by_mode) == {
        "sequential", "batched", "cached-cold", "cached-warm"
    }
    assert all(r.n_queries == 8 for r in results)
    # Scans + hits is the same work in every mode; the warm cache does
    # all of it without touching the index.
    work = by_mode["sequential"].n_index_scans
    assert work > 0
    for result in results:
        assert result.n_index_scans + result.n_cache_hits == work
    assert by_mode["sequential"].n_cache_hits == 0
    assert by_mode["batched"].n_cache_hits == 0
    assert by_mode["cached-warm"].n_index_scans == 0


def test_batch_service_rejects_bad_arguments(workload):
    with pytest.raises(ValueError):
        measure_batch_service(workload, n_queries=0)
    with pytest.raises(ValueError):
        measure_batch_service(workload, repeat=0)


def test_batch_service_reports_nothing_shardwise_for_monolithic(workload):
    results, _ = measure_batch_service(workload, n_queries=3, repeat=1)
    assert all(r.shard_scans is None for r in results)
    assert all(r.shard_prune_rate is None for r in results)


def test_batch_service_reports_per_shard_scans(workload):
    from dataclasses import replace

    from repro import ShardedSNTIndex

    sharded = ShardedSNTIndex.build(
        workload.dataset.trajectories,
        workload.network.alphabet_size,
        n_shards=3,
        partition_days=7,
    )
    sharded_workload = replace(workload, index=sharded)
    results, identical = measure_batch_service(
        sharded_workload, n_queries=4, repeat=2, n_workers=2
    )
    assert identical
    by_mode = {r.mode: r for r in results}
    for result in results:
        assert result.shard_scans is not None
        assert set(result.shard_scans) == {
            "shard_0000", "shard_0001", "shard_0002"
        }
        assert result.shard_prune_rate is not None
        assert 0.0 <= result.shard_prune_rate <= 1.0
    # The warm cache answers without touching the index, so no shard
    # sees a scan in that mode; the uncached modes scan every dispatch.
    assert sum(by_mode["cached-warm"].shard_scans.values()) == 0
    assert sum(by_mode["sequential"].shard_scans.values()) > 0
