"""Tests for congestion, the workload generator, and the GPS pipeline."""

import numpy as np
import pytest

from repro.config import SECONDS_PER_DAY, get_scale
from repro.network import RoadCategory, ZoneType, generate_network
from repro.trajectories import (
    MapMatcher,
    congestion_multiplier,
    generate_dataset,
    is_weekend,
    simulate_gps,
    split_on_gaps,
    trajectories_from_gps,
)
from repro.trajectories.gps import GPSPoint
from repro.trajectories.preprocess import matched_edges_to_points


class TestCongestion:
    def test_rush_hour_peaks(self):
        free = congestion_multiplier(
            3 * 3600, RoadCategory.RESIDENTIAL, ZoneType.CITY
        )
        rush = congestion_multiplier(
            8 * 3600, RoadCategory.RESIDENTIAL, ZoneType.CITY
        )
        assert free == pytest.approx(1.0, abs=0.02)
        assert rush > 1.4

    def test_city_congests_more_than_rural(self):
        t = 8 * 3600
        city = congestion_multiplier(t, RoadCategory.SECONDARY, ZoneType.CITY)
        rural = congestion_multiplier(t, RoadCategory.SECONDARY, ZoneType.RURAL)
        assert city > rural

    def test_weekend_is_flat_at_rush_hour(self):
        saturday = 5 * SECONDS_PER_DAY + 8 * 3600
        multiplier = congestion_multiplier(
            saturday, RoadCategory.SECONDARY, ZoneType.CITY
        )
        assert multiplier < 1.15

    def test_is_weekend(self):
        assert not is_weekend(0)  # Monday
        assert is_weekend(5 * SECONDS_PER_DAY + 10)
        assert is_weekend(6 * SECONDS_PER_DAY + 10)
        assert not is_weekend(7 * SECONDS_PER_DAY + 10)

    def test_multiplier_at_least_one(self):
        for hour in range(24):
            for zone in ZoneType:
                multiplier = congestion_multiplier(
                    hour * 3600, RoadCategory.PRIMARY, zone
                )
                assert multiplier >= 1.0


class TestGeneratedDataset:
    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_dataset("tiny", seed=0)

    def test_all_trajectories_valid(self, dataset):
        dataset.trajectories.validate()

    def test_paths_are_connected(self, dataset):
        network = dataset.network
        for trajectory in list(dataset.trajectories)[:200]:
            assert network.is_path(list(trajectory.path))

    def test_entry_times_consistent_with_durations(self, dataset):
        for trajectory in list(dataset.trajectories)[:100]:
            for a, b in zip(trajectory.points, trajectory.points[1:]):
                assert b.t == a.t + int(a.tt)

    def test_rush_hour_slower_than_offpeak(self, dataset):
        # Average speed of morning-rush trips is lower than mid-morning.
        def mean_speed(lo_h, hi_h):
            speeds = []
            for tr in dataset.trajectories:
                tod = tr.start_time % SECONDS_PER_DAY
                if lo_h * 3600 <= tod < hi_h * 3600 and not is_weekend(tr.start_time):
                    meters = dataset.network.path_length_m(list(tr.path))
                    speeds.append(meters / tr.duration())
            return np.mean(speeds)

        assert mean_speed(7.5, 8.5) < mean_speed(10.5, 12.0)

    def test_user_ids_within_driver_population(self, dataset):
        users = {tr.user_id for tr in dataset.trajectories}
        assert users <= {d.user_id for d in dataset.drivers}

    def test_deterministic(self):
        a = generate_dataset("tiny", seed=3)
        b = generate_dataset("tiny", seed=3)
        assert len(a.trajectories) == len(b.trajectories)
        assert a.trajectories[5].path == b.trajectories[5].path
        assert a.trajectories[5].points == b.trajectories[5].points

    def test_span_roughly_matches_scale(self, dataset):
        scale = get_scale("tiny")
        start, end = dataset.trajectories.time_span()
        assert (end - start) / SECONDS_PER_DAY <= scale.n_days + 1
        assert (end - start) / SECONDS_PER_DAY >= scale.n_days * 0.5


class TestGPS:
    def test_simulate_rate_and_noise(self):
        synthetic = generate_network("tiny", seed=0)
        dataset = generate_dataset("tiny", seed=0, synthetic=synthetic)
        trajectory = dataset.trajectories[0]
        fixes = simulate_gps(
            synthetic.network, trajectory.points, rate_hz=1.0, noise_std_m=0.0
        )
        # Roughly one fix per second of travel.
        assert len(fixes) == pytest.approx(trajectory.duration(), rel=0.2)
        times = [f.t for f in fixes]
        assert times == sorted(times)

    def test_bad_rate(self):
        synthetic = generate_network("tiny", seed=0)
        with pytest.raises(ValueError):
            simulate_gps(synthetic.network, [], rate_hz=0.0)

    def test_split_on_gaps(self):
        fixes = [GPSPoint(t, 0, 0) for t in [0, 1, 2, 400, 401, 900]]
        trips = split_on_gaps(fixes, gap_s=180)
        assert [len(t) for t in trips] == [3, 2, 1]

    def test_split_empty(self):
        assert split_on_gaps([], gap_s=180) == []

    def test_split_bad_gap(self):
        with pytest.raises(ValueError):
            split_on_gaps([], gap_s=0)


class TestMapMatching:
    @pytest.fixture(scope="class")
    def world(self):
        synthetic = generate_network("tiny", seed=0)
        dataset = generate_dataset("tiny", seed=0, synthetic=synthetic)
        return synthetic, dataset

    def test_recovers_planted_path(self, world):
        synthetic, dataset = world
        rng = np.random.default_rng(5)
        # Pick a reasonably long trajectory.
        trajectory = max(dataset.trajectories, key=len)
        fixes = simulate_gps(
            synthetic.network,
            trajectory.points,
            rate_hz=1.0,
            noise_std_m=3.0,
            rng=rng,
        )
        matcher = MapMatcher(synthetic.network)
        edges, retained = matcher.match_trace(fixes)
        assert len(retained) == len(edges) > 0
        truth = set(trajectory.path)
        correct = sum(1 for e in edges if e in truth)
        assert correct / len(edges) >= 0.9

    def test_empty_trace(self, world):
        synthetic, _ = world
        matcher = MapMatcher(synthetic.network)
        assert matcher.match([]) == []

    def test_fix_far_from_network_skipped(self, world):
        synthetic, _ = world
        matcher = MapMatcher(synthetic.network)
        edges, retained = matcher.match_trace(
            [GPSPoint(0.0, 1e8, 1e8)]
        )
        assert edges == [] and retained == []

    def test_bad_parameters(self, world):
        synthetic, _ = world
        with pytest.raises(ValueError):
            MapMatcher(synthetic.network, sigma_m=0.0)


class TestPreprocess:
    def test_matched_edges_to_points_grouping(self):
        fixes = [GPSPoint(float(t), 0, 0) for t in range(8)]
        edges = [1, 1, 1, 2, 2, 3, 3, 3]
        points = matched_edges_to_points(edges, fixes)
        assert [p.edge for p in points] == [1, 2, 3]
        assert points[0].t == 0 and points[0].tt == 3.0
        assert points[1].t == 3 and points[1].tt == 2.0
        assert points[2].t == 5 and points[2].tt == 3.0

    def test_boundary_trimming(self):
        fixes = [GPSPoint(float(t), 0, 0) for t in range(6)]
        edges = [9, 1, 1, 2, 2, 7]  # single-fix boundary edges dropped
        points = matched_edges_to_points(edges, fixes)
        assert [p.edge for p in points] == [1, 2]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            matched_edges_to_points([1], [])

    def test_full_pipeline_recovers_trajectories(self):
        synthetic = generate_network("tiny", seed=0)
        dataset = generate_dataset("tiny", seed=0, synthetic=synthetic)
        rng = np.random.default_rng(9)
        trajectory = max(dataset.trajectories, key=len)
        fixes = simulate_gps(
            synthetic.network, trajectory.points, noise_std_m=3.0, rng=rng
        )
        result = trajectories_from_gps(
            synthetic.network, [(trajectory.user_id, fixes)]
        )
        assert len(result) >= 1
        matched = result[0]
        # Most of the true path is recovered in order.
        truth = set(trajectory.path)
        hits = sum(1 for e in matched.path if e in truth)
        assert hits / len(matched.path) >= 0.85
        matched.validate()
