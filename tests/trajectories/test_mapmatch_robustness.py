"""Robustness scenarios for the HMM map matcher."""

import numpy as np
import pytest

from repro.network import Edge, RoadCategory, RoadNetwork, ZoneType
from repro.trajectories import MapMatcher, simulate_gps
from repro.trajectories.gps import GPSPoint
from repro.trajectories.model import TrajectoryPoint


def two_street_network():
    """Two parallel eastbound streets 100 m apart, with a connector."""
    network = RoadNetwork()
    # North street: vertices 0-1-2; south street: 3-4-5; connector 1-4.
    coordinates = {
        0: (0, 100), 1: (200, 100), 2: (400, 100),
        3: (0, 0), 4: (200, 0), 5: (400, 0),
    }
    for vertex, position in coordinates.items():
        network.add_vertex(vertex, position)
    rows = [
        (1, 0, 1), (2, 1, 2),  # north eastbound
        (3, 3, 4), (4, 4, 5),  # south eastbound
        (5, 1, 4), (6, 4, 1),  # connector both ways
    ]
    for edge_id, s, t in rows:
        network.add_edge(
            Edge(edge_id, s, t, RoadCategory.RESIDENTIAL, ZoneType.CITY,
                 max(1.0, abs(coordinates[t][0] - coordinates[s][0])
                     + abs(coordinates[t][1] - coordinates[s][1])),
                 50.0)
        )
    return network


class TestParallelStreets:
    def test_stays_on_correct_street(self):
        network = two_street_network()
        rng = np.random.default_rng(0)
        # Drive the north street.
        points = [
            TrajectoryPoint(1, 0, 20.0),
            TrajectoryPoint(2, 20, 20.0),
        ]
        fixes = simulate_gps(network, points, noise_std_m=4.0, rng=rng)
        matcher = MapMatcher(network)
        edges, _ = matcher.match_trace(fixes)
        assert edges, "matcher must produce a result"
        north = sum(1 for e in edges if e in (1, 2))
        assert north / len(edges) >= 0.9

    def test_detour_via_connector_recovered(self):
        network = two_street_network()
        rng = np.random.default_rng(1)
        # North, then connector south, then south street.
        points = [
            TrajectoryPoint(1, 0, 20.0),
            TrajectoryPoint(5, 20, 12.0),
            TrajectoryPoint(4, 32, 20.0),
        ]
        fixes = simulate_gps(network, points, noise_std_m=3.0, rng=rng)
        matcher = MapMatcher(network)
        edges, _ = matcher.match_trace(fixes)
        assert set(edges) >= {1, 4}, "start and end streets recovered"
        hits = sum(1 for e in edges if e in (1, 5, 4))
        assert hits / len(edges) >= 0.85


class TestSamplingRates:
    def test_sparse_sampling_still_matches(self):
        network = two_street_network()
        rng = np.random.default_rng(2)
        points = [
            TrajectoryPoint(1, 0, 20.0),
            TrajectoryPoint(2, 20, 20.0),
        ]
        # 0.2 Hz: a fix every 5 seconds.
        fixes = simulate_gps(
            network, points, rate_hz=0.2, noise_std_m=3.0, rng=rng
        )
        assert len(fixes) <= 10
        matcher = MapMatcher(network)
        edges, _ = matcher.match_trace(fixes)
        assert edges
        assert all(e in (1, 2) for e in edges)

    def test_single_fix(self):
        network = two_street_network()
        matcher = MapMatcher(network)
        edges, retained = matcher.match_trace(
            [GPSPoint(0.0, 100.0, 101.0)]
        )
        assert len(edges) == 1
        assert edges[0] == 1  # nearest: north street


class TestOutliers:
    def test_outlier_fix_does_not_derail(self):
        network = two_street_network()
        rng = np.random.default_rng(3)
        points = [
            TrajectoryPoint(1, 0, 20.0),
            TrajectoryPoint(2, 20, 20.0),
        ]
        fixes = list(
            simulate_gps(network, points, noise_std_m=2.0, rng=rng)
        )
        # Inject one far-off outlier mid-trace (out of candidate range:
        # it is dropped, not matched).
        middle = len(fixes) // 2
        fixes[middle] = GPSPoint(fixes[middle].t, 10_000.0, 10_000.0)
        matcher = MapMatcher(network)
        edges, retained = matcher.match_trace(fixes)
        assert len(retained) == len(fixes) - 1
        correct = sum(1 for e in edges if e in (1, 2))
        assert correct / len(edges) >= 0.9
