"""Tests for the NCT trajectory model."""

import pytest

from repro.errors import TrajectoryError
from repro.trajectories import Trajectory, TrajectoryPoint, TrajectorySet

from tests.paper_vectors import TRAJECTORIES


def make_paper_set() -> TrajectorySet:
    return TrajectorySet(
        [
            Trajectory(
                traj_id=d,
                user_id=u,
                points=[TrajectoryPoint(e, t, tt) for e, t, tt in seq],
            )
            for d, u, seq in TRAJECTORIES
        ]
    )


class TestTrajectory:
    def setup_method(self):
        self.trajectories = make_paper_set()

    def test_path(self):
        assert self.trajectories.by_id(0).path == (1, 2, 5)  # A,B,E
        assert self.trajectories.by_id(1).path == (1, 3, 4, 5)  # A,C,D,E

    def test_start_time(self):
        assert self.trajectories.by_id(2).start_time == 4

    def test_duration_full(self):
        # Dur(tr0, <A,B,E>) = 11, Dur(tr3, <A,B,E>) = 10 (Section 2.3).
        assert self.trajectories.by_id(0).duration() == 11.0
        assert self.trajectories.by_id(3).duration() == 10.0

    def test_duration_of_path(self):
        tr0 = self.trajectories.by_id(0)
        assert tr0.duration_of_path([1, 2, 5]) == 11.0
        assert tr0.duration_of_path([1, 2]) == 7.0
        assert tr0.duration_of_path([2, 5]) == 8.0
        assert tr0.duration_of_path([5]) == 4.0

    def test_duration_of_path_absent(self):
        tr0 = self.trajectories.by_id(0)
        assert tr0.duration_of_path([1, 3]) is None  # A,C not in tr0
        assert tr0.duration_of_path([1, 5]) is None  # not contiguous
        assert tr0.duration_of_path([]) is None

    def test_duration_of_subpath_bounds(self):
        tr0 = self.trajectories.by_id(0)
        with pytest.raises(TrajectoryError):
            tr0.duration_of_subpath(0, 4)
        with pytest.raises(TrajectoryError):
            tr0.duration_of_subpath(2, 2)

    def test_cumulative_durations(self):
        tr1 = self.trajectories.by_id(1)
        assert tr1.cumulative_durations() == [4.0, 6.0, 10.0, 15.0]

    def test_validate_ok(self):
        self.trajectories.validate()

    def test_validate_nonmonotonic_time(self):
        bad = Trajectory(
            99, 1, [TrajectoryPoint(1, 5, 2.0), TrajectoryPoint(2, 5, 2.0)]
        )
        with pytest.raises(TrajectoryError):
            bad.validate()

    def test_validate_nonpositive_tt(self):
        bad = Trajectory(99, 1, [TrajectoryPoint(1, 5, 0.0)])
        with pytest.raises(TrajectoryError):
            bad.validate()

    def test_empty_trajectory_invalid(self):
        with pytest.raises(TrajectoryError):
            Trajectory(99, 1, []).validate()
        with pytest.raises(TrajectoryError):
            _ = Trajectory(99, 1, []).start_time


class TestTrajectorySet:
    def test_lookup(self):
        trajectories = make_paper_set()
        assert len(trajectories) == 4
        assert trajectories.has_id(2)
        assert not trajectories.has_id(9)
        with pytest.raises(TrajectoryError):
            trajectories.by_id(9)

    def test_user_map(self):
        trajectories = make_paper_set()
        assert trajectories.user_of(0) == 1
        assert trajectories.user_of(1) == 2
        assert trajectories.users() == {0: 1, 1: 2, 2: 2, 3: 1}

    def test_duplicate_id_rejected(self):
        trajectories = make_paper_set()
        with pytest.raises(TrajectoryError):
            trajectories.add(
                Trajectory(0, 1, [TrajectoryPoint(1, 0, 1.0)])
            )
        with pytest.raises(TrajectoryError):
            TrajectorySet(
                [
                    Trajectory(5, 1, [TrajectoryPoint(1, 0, 1.0)]),
                    Trajectory(5, 1, [TrajectoryPoint(1, 0, 1.0)]),
                ]
            )

    def test_total_traversals(self):
        assert make_paper_set().total_traversals() == 13

    def test_time_span(self):
        start, end = make_paper_set().time_span()
        assert start == 0
        assert end == 18  # tr1/tr3 enter E at 12, +5/+4 seconds, +1

    def test_empty_set_time_span(self):
        with pytest.raises(TrajectoryError):
            TrajectorySet().time_span()
