"""Shared helpers lifting legacy query shapes into the typed API.

The PR-3 shims were removed in PR 5 and the suite promotes repro
deprecations to errors, so tests that still *construct* legacy
``StrictPathQuery`` objects route them through the typed surface with
these two helpers.
"""

from repro import TripRequest


def run_trip(engine, query, exclude_ids=()):
    """Answer one legacy StrictPathQuery through the typed API."""
    return engine.query(TripRequest.from_spq(query, exclude_ids=exclude_ids))


def as_requests(queries, exclude_ids=None):
    """Lift legacy (queries, exclude_ids) pairs into TripRequests."""
    if exclude_ids is None:
        exclude_ids = [()] * len(queries)
    return [
        TripRequest.from_spq(query, exclude_ids=excluded)
        for query, excluded in zip(queries, exclude_ids)
    ]
